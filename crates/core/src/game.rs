//! The assembly game (§3.3–§3.6): the Gym-like environment the RL agent
//! plays to optimize a SASS schedule.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gpusim::{measure, GpuConfig, LaunchConfig, MeasureOptions, Measurement};
use nn::Matrix;
use rl::{Env, Step};
use sass::Program;
use serde::{Deserialize, Serialize};

use crate::action::{Action, ActionSpace, Direction, EditKind, IncrementalMasker, ScheduleEdit};
use crate::analysis::{analyze, Analysis};
use crate::delta_session::DeltaSession;
use crate::embed::{embed_program, embed_rows_into, feature_count};
use crate::eval_cache::program_key;
use crate::eval_cache::{combine_item_keys, combine_keys, context_key, item_key, EvalCache};
use crate::stall_table::StallTable;

/// Game configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Episode length (number of actions per episode); 32 in the paper.
    pub episode_length: usize,
    /// Measurement protocol for the reward signal.
    pub measure: MeasureOptions,
    /// The action space offered to the agent. The default reproduces the
    /// paper's adjacent-swap space byte-identically; [`ActionSpace::Rich`]
    /// adds block moves, reuse toggles, stall retuning and barrier-wait
    /// edits.
    #[serde(default)]
    pub action_space: ActionSpace,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            episode_length: 32,
            measure: MeasureOptions {
                warmup: 0,
                repeats: 5,
                noise_std: 0.0,
                seed: 0,
            },
            action_space: ActionSpace::default(),
        }
    }
}

/// One recorded move of an episode, used for the optimization-move traces of
/// §5.7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Move {
    /// Instruction index that was moved (its post-edit position; for
    /// in-place content edits the instruction does not move).
    pub instruction: usize,
    /// Direction of the move (positional edits; in-place content edits
    /// record [`Direction::Down`] and are distinguished by `kind`).
    pub direction: Direction,
    /// The edit family applied (snapshots from before the richer action
    /// space default to [`EditKind::SwapUp`]).
    #[serde(default)]
    pub kind: EditKind,
    /// The moved instruction's text.
    pub text: String,
    /// Reward received for the move.
    pub reward: f32,
}

/// The assembly game environment.
#[derive(Debug, Clone)]
pub struct AssemblyGame {
    gpu: GpuConfig,
    launch: LaunchConfig,
    config: GameConfig,
    stalls: StallTable,
    initial: Program,
    initial_runtime: f64,
    initial_digest: u64,
    current: Program,
    current_runtime: f64,
    /// Schedule-pure derived state of `current` (analysis, action mask,
    /// legality context, observation), shared through the per-kernel
    /// [`DerivedViews`] memo: revisited schedules re-adopt their views with
    /// an `Arc` clone instead of re-analyzing.
    views: Arc<DerivedViews>,
    /// Memo of derived views keyed by schedule digest, shared across clones
    /// of this game (episode replays, greedy probes, `VecEnv` workers). The
    /// views are pure functions of the listing, so sharing cannot change an
    /// observable result; the map is size-capped, never evicts, and only
    /// trades recomputation for memory.
    views_memo: Arc<Mutex<HashMap<u64, Arc<DerivedViews>>>>,
    steps_in_episode: usize,
    best: Program,
    best_runtime: f64,
    action_slots: usize,
    trace: Vec<Move>,
    /// Schedule-evaluation memo, shared (via `Arc`) across clones of this
    /// game — episode resets, greedy probes and `VecEnv` worker copies all
    /// hit the same cache.
    cache: Arc<EvalCache>,
    /// Digest of (device, launch, measurement protocol), combined with the
    /// per-schedule digest into cache keys.
    context_key: u64,
    /// Incremental re-simulation session mirroring `current`: cache misses
    /// are answered by delta evaluation against its recorded baseline
    /// instead of a full simulation from cycle zero.
    session: DeltaSession,
    /// Per listing-item digests of `current` (see
    /// [`crate::eval_cache::item_key`]): reordering instructions only swaps
    /// entries, so cache keys cost a fold over cached `u64`s instead of
    /// re-hashing the whole listing per measurement.
    item_keys: Vec<u64>,
    /// Listing-item position of each instruction index (labels interleave).
    item_of_instruction: Vec<usize>,
    /// Views of the initial schedule, re-adopted by every episode reset
    /// (the initial schedule never changes, and resets happen once per
    /// episode).
    initial_views: Arc<DerivedViews>,
    initial_item_keys: Vec<u64>,
}

/// Upper bound on memoized [`DerivedViews`] per kernel; beyond it new
/// schedules are computed without being remembered (no eviction, so the
/// working set of the search's most-revisited schedules stays resident).
const VIEWS_MEMO_CAP: usize = 256;

/// Everything the game derives from the current listing alone: the static
/// analysis, the movable set, the resized action mask, the retained
/// legality context and the embedded observation. Pure function of the
/// schedule text (given the game's fixed stall table and device), hence
/// freely shareable and memoizable by schedule digest.
#[derive(Debug)]
struct DerivedViews {
    analysis: Analysis,
    movable: Vec<usize>,
    mask: Vec<bool>,
    /// Resolved legal edit per flat action id ([`ActionSpace::Rich`] games
    /// only; empty in the default swap space, whose mask path is untouched).
    /// `mask[id]` is exactly `edits[id].is_some()`, so legality and
    /// application can never disagree.
    edits: Vec<Option<ScheduleEdit>>,
    masker: IncrementalMasker,
    obs: Matrix,
}

/// Digests every listing item of `program` and records where each
/// instruction sits among the items (labels interleave), so swaps can be
/// mirrored onto the digest list in O(1).
fn index_item_keys(program: &Program) -> (Vec<u64>, Vec<usize>) {
    let mut keys = Vec::new();
    let mut item_of_instruction = Vec::new();
    for (position, item) in program.items().iter().enumerate() {
        if matches!(item, sass::Item::Instr(_)) {
            item_of_instruction.push(position);
        }
        keys.push(item_key(item));
    }
    (keys, item_of_instruction)
}

/// Builds the full derived views of one listing from a fresh analysis.
fn build_views(
    program: &Program,
    analysis: Analysis,
    stalls: &StallTable,
    gpu: &GpuConfig,
    action_slots: usize,
    space: ActionSpace,
) -> DerivedViews {
    let movable = analysis.movable_memory_indices();
    let mut masker = IncrementalMasker::new(program, &analysis, stalls);
    let (mut mask, edits) = match space {
        ActionSpace::AdjacentSwap => (masker.full_mask(&movable, &analysis), Vec::new()),
        ActionSpace::Rich => {
            let edits = masker.full_edits(&movable, &analysis, space);
            (edits.iter().map(Option::is_some).collect(), edits)
        }
    };
    mask.resize(space.action_count(action_slots), false);
    let obs = embed_program(program, &analysis, &gpu.arch);
    DerivedViews {
        analysis,
        movable,
        mask,
        edits,
        masker,
        obs,
    }
}

impl AssemblyGame {
    /// Creates a game from the `-O3` schedule the compiler produced.
    #[must_use]
    pub fn new(
        gpu: GpuConfig,
        program: Program,
        launch: LaunchConfig,
        stalls: StallTable,
        config: GameConfig,
    ) -> Self {
        Self::with_eval_cache(
            gpu,
            program,
            launch,
            stalls,
            config,
            Arc::new(EvalCache::new()),
        )
    }

    /// Creates a game sharing an existing schedule-evaluation cache (e.g.
    /// one cache across every env of a `VecEnv`, or across games replaying
    /// the same kernel). Cache keys include the full evaluation context, so
    /// sharing across different kernels/launches/devices is always safe.
    #[must_use]
    pub fn with_eval_cache(
        gpu: GpuConfig,
        program: Program,
        launch: LaunchConfig,
        stalls: StallTable,
        config: GameConfig,
        cache: Arc<EvalCache>,
    ) -> Self {
        let ctx_key = context_key(&gpu, &launch, &config.measure);
        // The session's recorded baseline is the one full simulation the
        // initial measurement always cost; its report doubles as the
        // cache entry (bit-identical to `measure`).
        let session = DeltaSession::new(
            gpu.clone(),
            launch.clone(),
            config.measure.clone(),
            &program,
        );
        let measurement = cache
            .get_or_insert_with(combine_keys(ctx_key, program_key(&program)), || {
                session.initial_measurement()
            });
        let runtime = measurement.mean_us;
        let digest = measurement.run.sm.output_digest;
        let analysis = analyze(&program, &stalls);
        let action_slots = analysis.movable_memory_indices().len();
        let views = Arc::new(build_views(
            &program,
            analysis,
            &stalls,
            &gpu,
            action_slots,
            config.action_space,
        ));
        let (item_keys, item_of_instruction) = index_item_keys(&program);
        let views_memo = Arc::new(Mutex::new(HashMap::new()));
        views_memo.lock().expect("views memo").insert(
            combine_item_keys(item_keys.iter().copied()),
            Arc::clone(&views),
        );
        AssemblyGame {
            gpu,
            launch,
            config,
            stalls,
            initial: program.clone(),
            initial_runtime: runtime,
            initial_digest: digest,
            current: program.clone(),
            current_runtime: runtime,
            initial_views: Arc::clone(&views),
            initial_item_keys: item_keys.clone(),
            item_keys,
            item_of_instruction,
            views,
            views_memo,
            steps_in_episode: 0,
            best: program,
            best_runtime: runtime,
            action_slots,
            trace: Vec::new(),
            cache,
            context_key: ctx_key,
            session,
        }
    }

    /// The schedule-evaluation cache backing this game.
    #[must_use]
    pub fn eval_cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Runtime of the unmodified `-O3` schedule in microseconds.
    #[must_use]
    pub fn initial_runtime_us(&self) -> f64 {
        self.initial_runtime
    }

    /// The best schedule found so far and its runtime in microseconds.
    #[must_use]
    pub fn best(&self) -> (&Program, f64) {
        (&self.best, self.best_runtime)
    }

    /// The output digest of the unmodified schedule (used by probabilistic
    /// testing).
    #[must_use]
    pub fn initial_digest(&self) -> u64 {
        self.initial_digest
    }

    /// The static analysis of the initial schedule.
    #[must_use]
    pub fn analysis(&self) -> &Analysis {
        &self.views.analysis
    }

    /// The moves applied since the last reset (inference-mode trace, §5.7).
    #[must_use]
    pub fn trace(&self) -> &[Move] {
        &self.trace
    }

    /// Measures the game's current schedule, answering revisits from the
    /// shared cache and fresh schedules from the incremental delta session
    /// (bit-identical to a full `measure`, so cache entries stay
    /// interchangeable with ones other games computed in full).
    fn measure_current_schedule(&mut self) -> (f64, u64, u64) {
        debug_assert_eq!(
            combine_item_keys(self.item_keys.iter().copied()),
            program_key(&self.current),
            "cached item digests must track the current listing"
        );
        let key = combine_keys(
            self.context_key,
            combine_item_keys(self.item_keys.iter().copied()),
        );
        let m = match self.cache.lookup(key) {
            Some(hit) => hit,
            None => {
                let (measurement, outcome) = self.session.measure_current();
                self.cache.record_delta_outcome(&outcome);
                self.cache.insert_computed(key, measurement.clone());
                measurement
            }
        };
        (m.mean_us, m.run.sm.hazards, m.run.sm.output_digest)
    }

    /// The full cached measurement of a schedule under the game's protocol.
    pub fn cached_measurement(&self, program: &Program) -> Measurement {
        self.cache
            .get_or_insert_with(combine_keys(self.context_key, program_key(program)), || {
                measure(&self.gpu, program, &self.launch, &self.config.measure)
            })
    }

    /// The schedule digest of `current`, folded from the cached per-item
    /// digests (no re-hashing of the listing text).
    fn current_schedule_key(&self) -> u64 {
        combine_item_keys(self.item_keys.iter().copied())
    }

    /// Rebuilds every derived view of `current` from scratch: static
    /// analysis, movable set, legality context, mask and observation. Used
    /// by checkpoint restore and as the fallback when an accepted swap
    /// invalidated an incremental precondition.
    fn refresh_full(&mut self) {
        let analysis = analyze(&self.current, &self.stalls);
        self.views = Arc::new(build_views(
            &self.current,
            analysis,
            &self.stalls,
            &self.gpu,
            self.action_slots,
            self.config.action_space,
        ));
    }

    /// Remembers freshly derived views under the current schedule digest
    /// (bounded by [`VIEWS_MEMO_CAP`]; over budget they are simply not
    /// remembered).
    fn memoize_views(&self, key: u64, views: &Arc<DerivedViews>) {
        let mut memo = self.views_memo.lock().expect("views memo");
        if memo.len() < VIEWS_MEMO_CAP {
            memo.insert(key, Arc::clone(views));
        }
    }

    /// Refreshes the derived views after an accepted swap of `upper` and
    /// `upper + 1`: revisited schedules re-adopt their memoized views, new
    /// ones take the incremental paths when their preconditions verifiably
    /// hold and fall back to [`AssemblyGame::refresh_full`] otherwise. The
    /// preconditions are checked against the *fresh* analysis, so the
    /// result is always identical to a full rebuild (the
    /// `masking_properties` and `delta_equivalence` suites pin this).
    fn refresh_after_swap(&mut self, upper: usize) {
        let key = self.current_schedule_key();
        let memoized = self
            .views_memo
            .lock()
            .expect("views memo")
            .get(&key)
            .map(Arc::clone);
        if let Some(views) = memoized {
            self.views = views;
            return;
        }
        let analysis = analyze(&self.current, &self.stalls);
        let previous = Arc::clone(&self.views);
        // The incremental mask reuses out-of-block entries, which is only
        // valid when the swap left the global context inputs unchanged: the
        // (schedule-inferred) stall table and the denylist (up to the
        // relabeling of the two swapped indices).
        let remap = |i: usize| {
            if i == upper {
                upper + 1
            } else if i == upper + 1 {
                upper
            } else {
                i
            }
        };
        let denylist_permuted = analysis.denylist.len() == previous.analysis.denylist.len()
            && analysis
                .denylist
                .iter()
                .all(|&i| previous.analysis.denylist.contains(&remap(i)));
        let incremental = denylist_permuted
            && analysis.stalls == previous.analysis.stalls
            && previous.masker.swap_stays_incremental(upper);
        if !incremental {
            self.refresh_full();
            self.memoize_views(key, &Arc::clone(&self.views));
            return;
        }
        let movable = analysis.movable_memory_indices();
        let mut masker = previous.masker.clone();
        masker.apply_swap(upper);
        let mut mask = masker.mask_after_swap(
            upper,
            &movable,
            &analysis,
            &previous.movable,
            &previous.mask,
        );
        mask.resize((self.action_slots * 2).max(1), false);
        let mut obs = previous.obs.clone();
        if analysis.register_table == previous.analysis.register_table
            && analysis.max_operands == previous.analysis.max_operands
        {
            // A row's embedding depends only on its own instruction once
            // the register table and padding width are fixed: re-embed the
            // two moved rows in place.
            embed_rows_into(
                &mut obs,
                &self.current,
                &[upper, upper + 1],
                &analysis,
                &self.gpu.arch,
            );
        } else {
            obs = embed_program(&self.current, &analysis, &self.gpu.arch);
        }
        let views = Arc::new(DerivedViews {
            analysis,
            movable,
            mask,
            edits: Vec::new(),
            masker,
            obs,
        });
        self.memoize_views(key, &views);
        self.views = views;
    }

    /// Applies `edit` to every mirror of the current schedule: the source
    /// program, the lowered delta-session form and the per-item digests.
    /// Returns false (with everything unchanged) when the edit does not fit
    /// the program — mask-resolved edits always do.
    fn apply_edit_everywhere(&mut self, edit: &ScheduleEdit) -> bool {
        match *edit {
            ScheduleEdit::Swap { .. } | ScheduleEdit::BlockMove { .. } => {
                let swaps = edit.swap_sequence();
                if swaps.is_empty()
                    || swaps
                        .iter()
                        .any(|&u| u + 1 >= self.current.instruction_count())
                {
                    return false;
                }
                for (applied, &upper) in swaps.iter().enumerate() {
                    if self.current.swap_instructions(upper, upper + 1).is_err() {
                        // Roll the already-applied prefix back so a
                        // malformed edit leaves no partial state.
                        for &undo in swaps[..applied].iter().rev() {
                            let _ = self.current.swap_instructions(undo, undo + 1);
                            self.session.apply_swap(undo);
                            self.item_keys.swap(
                                self.item_of_instruction[undo],
                                self.item_of_instruction[undo + 1],
                            );
                        }
                        return false;
                    }
                    self.session.apply_swap(upper);
                    self.item_keys.swap(
                        self.item_of_instruction[upper],
                        self.item_of_instruction[upper + 1],
                    );
                }
                true
            }
            _ => {
                if !edit.apply(&mut self.current) {
                    return false;
                }
                let index = edit.index();
                let inst = self
                    .current
                    .instruction(index)
                    .expect("edit target exists")
                    .clone();
                self.session.apply_replace(index, &inst);
                self.item_keys[self.item_of_instruction[index]] =
                    item_key(&sass::Item::Instr(inst));
                true
            }
        }
    }

    /// Refreshes the derived views after an accepted [`ActionSpace::Rich`]
    /// edit: revisited schedules re-adopt their memoized views, new ones
    /// take the incremental edit-table path when its preconditions
    /// verifiably hold against the fresh analysis, and everything else
    /// falls back to [`AssemblyGame::refresh_full`] (`masking_properties`
    /// pins incremental ≡ full for every edit kind).
    fn refresh_after_edit(&mut self, edit: &ScheduleEdit) {
        let key = self.current_schedule_key();
        let memoized = self
            .views_memo
            .lock()
            .expect("views memo")
            .get(&key)
            .map(Arc::clone);
        if let Some(views) = memoized {
            self.views = views;
            return;
        }
        let analysis = analyze(&self.current, &self.stalls);
        let previous = Arc::clone(&self.views);
        // Incremental updates reuse out-of-block entries, which is only
        // valid when the edit left the global context inputs unchanged: the
        // (schedule-inferred) stall table and the denylist (up to the edit's
        // relabeling of instruction positions).
        let denylist_permuted = analysis.denylist.len() == previous.analysis.denylist.len()
            && analysis.denylist.iter().all(|&i| {
                previous
                    .analysis
                    .denylist
                    .contains(&edit.old_position_of(i))
            });
        let incremental = denylist_permuted
            && analysis.stalls == previous.analysis.stalls
            && previous.masker.edit_stays_incremental(edit);
        if !incremental {
            self.refresh_full();
            self.memoize_views(key, &Arc::clone(&self.views));
            return;
        }
        let movable = analysis.movable_memory_indices();
        let mut masker = previous.masker.clone();
        masker.apply_edit(edit);
        let edits = masker.edits_after_edit(
            edit,
            &movable,
            &analysis,
            self.config.action_space,
            &previous.movable,
            &previous.edits,
        );
        let mut mask: Vec<bool> = edits.iter().map(Option::is_some).collect();
        mask.resize(
            self.config.action_space.action_count(self.action_slots),
            false,
        );
        let mut obs = previous.obs.clone();
        if analysis.register_table == previous.analysis.register_table
            && analysis.max_operands == previous.analysis.max_operands
        {
            embed_rows_into(
                &mut obs,
                &self.current,
                &edit.touched_indices(),
                &analysis,
                &self.gpu.arch,
            );
        } else {
            obs = embed_program(&self.current, &analysis, &self.gpu.arch);
        }
        let views = Arc::new(DerivedViews {
            analysis,
            movable,
            mask,
            edits,
            masker,
            obs,
        });
        self.memoize_views(key, &views);
        self.views = views;
    }

    /// One environment step in the [`ActionSpace::Rich`] space: the flat id
    /// is looked up in the resolved edit table (so an illegal or
    /// out-of-range id is a no-op, exactly like an unmasked swap id in the
    /// default space), the edit is applied to every schedule mirror, priced
    /// through the delta session, and reverted via its O(1) inverse if the
    /// simulator reports hazards or an output-digest change.
    fn step_rich(&mut self, action_id: usize) -> Step {
        self.steps_in_episode += 1;
        let mut reward = 0.0;
        let edit = self.views.edits.get(action_id).copied().flatten();
        if let Some(edit) = edit {
            let (_, kind) = self.config.action_space.decode(action_id);
            let moved_text = self
                .current
                .instruction(edit.index())
                .map(ToString::to_string)
                .unwrap_or_default();
            if self.apply_edit_everywhere(&edit) {
                let (runtime, hazards, digest) = self.measure_current_schedule();
                reward = ((self.current_runtime - runtime) / self.initial_runtime * 100.0) as f32;
                if hazards > 0 || digest != self.initial_digest {
                    // A corrupted schedule (should be prevented by masking):
                    // revert via the exact inverse edit and punish.
                    let undone = self.apply_edit_everywhere(&edit.inverse());
                    debug_assert!(undone, "inverse edit must apply");
                    reward = -10.0;
                } else {
                    self.current_runtime = runtime;
                    let moved = match edit {
                        ScheduleEdit::Swap { upper } => match kind {
                            EditKind::SwapUp => upper,
                            _ => upper + 1,
                        },
                        ScheduleEdit::BlockMove {
                            index,
                            direction,
                            distance,
                        } => match direction {
                            Direction::Up => index - distance,
                            Direction::Down => index + distance,
                        },
                        _ => edit.index(),
                    };
                    let direction = match edit {
                        ScheduleEdit::Swap { .. } => match kind {
                            EditKind::SwapUp => Direction::Up,
                            _ => Direction::Down,
                        },
                        ScheduleEdit::BlockMove { direction, .. } => direction,
                        _ => Direction::Down,
                    };
                    self.trace.push(Move {
                        instruction: moved,
                        direction,
                        kind,
                        text: moved_text,
                        reward,
                    });
                    if runtime < self.best_runtime {
                        self.best_runtime = runtime;
                        self.best = self.current.clone();
                    }
                    self.session.commit();
                    self.refresh_after_edit(&edit);
                }
            }
        }
        let done = self.steps_in_episode >= self.config.episode_length
            || !self.views.mask.iter().any(|&m| m);
        Step {
            observation: self.views.obs.clone(),
            reward,
            done,
        }
    }
}

/// The serialized form of an [`AssemblyGame`]'s mutable state (see
/// [`Env::state_bytes`]): everything `reset`/`step` mutate, with runtimes
/// stored as exact `f64` bit patterns. Static context (device, launch,
/// stall table, initial schedule) is *not* serialized — the snapshot must be
/// restored onto a game constructed for the same kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GameSnapshot {
    /// The action space the snapshot was taken under. Snapshots only restore
    /// onto a game configured for the same space (the reachable-state
    /// invariants differ), and an unknown space version fails decoding —
    /// both surface as the typed `rl::CheckpointError::EnvRejectedState`.
    #[serde(default)]
    action_space: ActionSpace,
    current: String,
    current_runtime_bits: u64,
    steps_in_episode: usize,
    best: String,
    best_runtime_bits: u64,
    trace: Vec<Move>,
}

impl Env for AssemblyGame {
    fn reset(&mut self) -> Matrix {
        self.current = self.initial.clone();
        self.current_runtime = self.initial_runtime;
        self.steps_in_episode = 0;
        self.trace.clear();
        // The initial schedule never changes, so every derived view is a
        // clone of the cached copies instead of a recomputation, and the
        // delta session re-adopts its recorded initial baseline.
        self.session.reset_to_initial();
        self.item_keys.clone_from(&self.initial_item_keys);
        self.views = Arc::clone(&self.initial_views);
        self.views.obs.clone()
    }

    fn step(&mut self, action_id: usize) -> Step {
        if self.config.action_space == ActionSpace::Rich {
            return self.step_rich(action_id);
        }
        let action = Action::from_id(action_id);
        self.steps_in_episode += 1;
        let mut reward = 0.0;
        if let Some(&index) = self.views.movable.get(action.slot).copied().as_ref() {
            let moved_text = self
                .current
                .instruction(index)
                .map(ToString::to_string)
                .unwrap_or_default();
            let (a, b) = match action.direction {
                Direction::Up => (index.saturating_sub(1), index),
                Direction::Down => (index, index + 1),
            };
            if a != b && self.current.swap_instructions(a, b).is_ok() {
                self.session.apply_swap(a);
                self.item_keys
                    .swap(self.item_of_instruction[a], self.item_of_instruction[b]);
                let (runtime, hazards, digest) = self.measure_current_schedule();
                // Reward (equation 3): relative improvement scaled by 100.
                reward = ((self.current_runtime - runtime) / self.initial_runtime * 100.0) as f32;
                if hazards > 0 || digest != self.initial_digest {
                    // A corrupted schedule (should be prevented by masking):
                    // revert and punish. The schedule is back to its
                    // pre-step state, so every derived view stays valid.
                    let _ = self.current.swap_instructions(a, b);
                    self.session.apply_swap(a);
                    self.item_keys
                        .swap(self.item_of_instruction[a], self.item_of_instruction[b]);
                    reward = -10.0;
                } else {
                    self.current_runtime = runtime;
                    let moved = match action.direction {
                        Direction::Up => b,
                        Direction::Down => a,
                    };
                    self.trace.push(Move {
                        instruction: moved,
                        direction: action.direction,
                        kind: match action.direction {
                            Direction::Up => EditKind::SwapUp,
                            Direction::Down => EditKind::SwapDown,
                        },
                        text: moved_text,
                        reward,
                    });
                    if runtime < self.best_runtime {
                        self.best_runtime = runtime;
                        self.best = self.current.clone();
                    }
                    self.session.commit();
                    self.refresh_after_swap(a);
                }
            }
        }
        let done = self.steps_in_episode >= self.config.episode_length
            || !self.views.mask.iter().any(|&m| m);
        Step {
            observation: self.views.obs.clone(),
            reward,
            done,
        }
    }

    fn action_count(&self) -> usize {
        self.config.action_space.action_count(self.action_slots)
    }

    fn action_mask(&self) -> Vec<bool> {
        self.views.mask.clone()
    }

    fn observation_features(&self) -> usize {
        feature_count(&self.views.analysis)
    }

    /// Serializes the game's mutable state (current/best schedules, their
    /// runtimes as exact bit patterns, episode progress and move trace) so
    /// an RL training run over this game can be checkpointed and resumed
    /// bit-identically.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        let snapshot = GameSnapshot {
            action_space: self.config.action_space,
            current: self.current.to_string(),
            current_runtime_bits: self.current_runtime.to_bits(),
            steps_in_episode: self.steps_in_episode,
            best: self.best.to_string(),
            best_runtime_bits: self.best_runtime.to_bits(),
            trace: self.trace.clone(),
        };
        Some(serde_json::to_string(&snapshot).ok()?.into_bytes())
    }

    /// Restores a [`Env::state_bytes`] snapshot onto a game constructed for
    /// the same kernel (same program length, device, launch and protocol).
    /// Returns `false` — leaving the game unchanged — when the bytes do not
    /// decode or the schedules do not belong to this kernel.
    fn restore_state(&mut self, state: &[u8]) -> bool {
        let Ok(text) = std::str::from_utf8(state) else {
            return false;
        };
        let Ok(snapshot) = serde_json::from_str::<GameSnapshot>(text) else {
            return false;
        };
        if snapshot.action_space != self.config.action_space {
            return false;
        }
        let Ok(current) = snapshot.current.parse::<Program>() else {
            return false;
        };
        let Ok(best) = snapshot.best.parse::<Program>() else {
            return false;
        };
        // Any reachable state is a permutation of the initial schedule — in
        // the richer space additionally with retuned control codes and reuse
        // flags, which the canonical form strips. A snapshot from a
        // different kernel — even one with the same instruction count —
        // fails this multiset check instead of being silently adopted.
        let canonical = |inst: &sass::Instruction| match self.config.action_space {
            ActionSpace::AdjacentSwap => inst.to_string(),
            ActionSpace::Rich => {
                let mut inst = inst.clone();
                *inst.control_mut() = sass::ControlCode::default();
                for operand in 0..inst.operands().len() {
                    inst.set_operand_reuse(operand, false);
                }
                inst.to_string()
            }
        };
        let multiset = |program: &Program| {
            let mut texts: Vec<String> = program.instructions().map(canonical).collect();
            texts.sort_unstable();
            texts
        };
        let initial = multiset(&self.initial);
        if multiset(&current) != initial || multiset(&best) != initial {
            return false;
        }
        self.current = current;
        self.current_runtime = f64::from_bits(snapshot.current_runtime_bits);
        self.steps_in_episode = snapshot.steps_in_episode;
        self.best = best;
        self.best_runtime = f64::from_bits(snapshot.best_runtime_bits);
        self.trace = snapshot.trace;
        self.refresh_full();
        self.session.resync(&self.current);
        let (item_keys, item_of_instruction) = index_item_keys(&self.current);
        self.item_keys = item_keys;
        self.item_of_instruction = item_of_instruction;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};

    fn small_game_in(space: ActionSpace) -> AssemblyGame {
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        AssemblyGame::new(
            GpuConfig::small(),
            kernel.program,
            kernel.launch,
            StallTable::builtin_a100(),
            GameConfig {
                action_space: space,
                ..GameConfig::default()
            },
        )
    }

    fn small_game() -> AssemblyGame {
        small_game_in(ActionSpace::default())
    }

    #[test]
    fn reset_produces_an_observation_matching_the_schedule() {
        let mut game = small_game();
        let obs = game.reset();
        assert_eq!(obs.cols(), game.observation_features());
        assert!(obs.rows() > 20);
        assert!(game.action_count() >= 2);
        assert_eq!(game.action_mask().len(), game.action_count());
    }

    #[test]
    fn greedy_exploration_improves_the_schedule_without_corruption() {
        let mut game = small_game();
        let _ = game.reset();
        let initial = game.initial_runtime_us();
        // Greedily take the first few legal actions that yield positive
        // reward; the game must never accept a corrupted schedule.
        let mut improved = 0;
        for _ in 0..12 {
            let mask = game.action_mask();
            let Some(action) = mask.iter().position(|&m| m) else {
                break;
            };
            let step = game.step(action);
            if step.reward > 0.0 {
                improved += 1;
            }
            if step.done {
                break;
            }
        }
        let (_, best_runtime) = game.best();
        assert!(best_runtime <= initial);
        assert!(!game.trace().is_empty() || improved == 0);
    }

    #[test]
    fn state_snapshot_round_trips_onto_a_fresh_game() {
        let mut game = small_game();
        let _ = game.reset();
        for _ in 0..4 {
            let mask = game.action_mask();
            let Some(action) = mask.iter().position(|&m| m) else {
                break;
            };
            game.step(action);
        }
        let state = game.state_bytes().expect("assembly game snapshots");
        let mut restored = small_game();
        assert!(restored.restore_state(&state));
        assert_eq!(restored.trace(), game.trace());
        assert_eq!(restored.best().1.to_bits(), game.best().1.to_bits());
        assert_eq!(restored.best().0.to_string(), game.best().0.to_string());
        assert_eq!(restored.action_mask(), game.action_mask());
        // The two games continue identically.
        let mask = game.action_mask();
        if let Some(action) = mask.iter().position(|&m| m) {
            let a = game.step(action);
            let b = restored.step(action);
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
            assert_eq!(a.done, b.done);
            assert_eq!(a.observation, b.observation);
        }
        // Garbage and foreign states are refused without panicking.
        assert!(!restored.restore_state(b"\xFF\xFE not json"));
        assert!(!restored.restore_state(b"{}"));
    }

    /// Mid-walk rich-space snapshots restore exactly — trace (including
    /// non-swap moves), best schedule, mask and the continuation — and the
    /// usual rejections (garbage, foreign kernels, wrong space, ids out of
    /// range) never panic.
    #[test]
    fn rich_state_snapshot_round_trips_and_rejects_foreign_states() {
        let mut game = small_game_in(ActionSpace::Rich);
        let _ = game.reset();
        // Walk a mix of edit kinds: take the first legal action of each
        // kind in turn so the trace records more than plain swaps.
        for kind_offset in 0..game.config.action_space.kinds_per_slot() {
            let mask = game.action_mask();
            let Some(action) = (0..mask.len())
                .filter(|&id| mask[id])
                .find(|&id| id % game.config.action_space.kinds_per_slot() == kind_offset)
            else {
                continue;
            };
            game.step(action);
        }
        assert!(!game.trace().is_empty());
        let state = game.state_bytes().expect("assembly game snapshots");
        let mut restored = small_game_in(ActionSpace::Rich);
        assert!(restored.restore_state(&state));
        assert_eq!(restored.trace(), game.trace());
        assert_eq!(restored.best().1.to_bits(), game.best().1.to_bits());
        assert_eq!(restored.best().0.to_string(), game.best().0.to_string());
        assert_eq!(restored.current.to_string(), game.current.to_string());
        assert_eq!(restored.action_mask(), game.action_mask());
        let mask = game.action_mask();
        if let Some(action) = mask.iter().position(|&m| m) {
            let a = game.step(action);
            let b = restored.step(action);
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
            assert_eq!(a.done, b.done);
            assert_eq!(a.observation, b.observation);
        }
        // Out-of-range action ids are inert, not fatal.
        let step = game.step(game.action_count() + 123);
        assert_eq!(step.reward.to_bits(), 0.0f32.to_bits());
        // Garbage bytes, a snapshot of another kernel, and a snapshot of
        // another action space are all refused without panicking.
        assert!(!restored.restore_state(b"\xFF\xFE not json"));
        let foreign_spec = KernelSpec::scaled(KernelKind::Softmax, 16);
        let foreign_config = KernelConfig {
            block_m: 1,
            block_n: 256,
            block_k: 1,
            num_warps: 4,
            num_stages: 1,
        };
        let foreign = generate(&foreign_spec, &foreign_config, ScheduleStyle::Baseline);
        let mut foreign_game = AssemblyGame::new(
            GpuConfig::small(),
            foreign.program,
            foreign.launch,
            StallTable::builtin_a100(),
            GameConfig {
                action_space: ActionSpace::Rich,
                ..GameConfig::default()
            },
        );
        assert!(!foreign_game.restore_state(&state));
        let mut swap_game = small_game();
        assert!(!swap_game.restore_state(&state));
    }

    #[test]
    fn episode_terminates_after_the_configured_length() {
        let mut game = small_game();
        let _ = game.reset();
        let mut steps = 0;
        loop {
            let mask = game.action_mask();
            let action = mask.iter().position(|&m| m).unwrap_or(0);
            steps += 1;
            if game.step(action).done {
                break;
            }
            assert!(steps <= 64, "episode must terminate");
        }
        assert!(steps <= GameConfig::default().episode_length);
    }
}
