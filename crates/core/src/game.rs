//! The assembly game (§3.3–§3.6): the Gym-like environment the RL agent
//! plays to optimize a SASS schedule.

use std::sync::Arc;

use gpusim::{measure, GpuConfig, LaunchConfig, MeasureOptions, Measurement};
use nn::Matrix;
use rl::{Env, Step};
use sass::Program;
use serde::{Deserialize, Serialize};

use crate::action::{action_mask, Action, Direction};
use crate::analysis::{analyze, Analysis};
use crate::embed::{embed_program, feature_count};
use crate::eval_cache::{combine_keys, context_key, program_key, EvalCache};
use crate::stall_table::StallTable;

/// Game configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Episode length (number of actions per episode); 32 in the paper.
    pub episode_length: usize,
    /// Measurement protocol for the reward signal.
    pub measure: MeasureOptions,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            episode_length: 32,
            measure: MeasureOptions {
                warmup: 0,
                repeats: 5,
                noise_std: 0.0,
                seed: 0,
            },
        }
    }
}

/// One recorded move of an episode, used for the optimization-move traces of
/// §5.7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Move {
    /// Instruction index that was moved.
    pub instruction: usize,
    /// Direction of the move.
    pub direction: Direction,
    /// The moved instruction's text.
    pub text: String,
    /// Reward received for the move.
    pub reward: f32,
}

/// The assembly game environment.
#[derive(Debug, Clone)]
pub struct AssemblyGame {
    gpu: GpuConfig,
    launch: LaunchConfig,
    config: GameConfig,
    stalls: StallTable,
    initial: Program,
    initial_runtime: f64,
    initial_digest: u64,
    current: Program,
    current_runtime: f64,
    analysis: Analysis,
    movable: Vec<usize>,
    /// Action mask of `current`, recomputed exactly once per schedule change
    /// (the mask is a pure function of the schedule, and both the env `done`
    /// check and the search strategies read it every step).
    mask: Vec<bool>,
    steps_in_episode: usize,
    best: Program,
    best_runtime: f64,
    action_slots: usize,
    trace: Vec<Move>,
    /// Schedule-evaluation memo, shared (via `Arc`) across clones of this
    /// game — episode resets, greedy probes and `VecEnv` worker copies all
    /// hit the same cache.
    cache: Arc<EvalCache>,
    /// Digest of (device, launch, measurement protocol), combined with the
    /// per-schedule digest into cache keys.
    context_key: u64,
}

impl AssemblyGame {
    /// Creates a game from the `-O3` schedule the compiler produced.
    #[must_use]
    pub fn new(
        gpu: GpuConfig,
        program: Program,
        launch: LaunchConfig,
        stalls: StallTable,
        config: GameConfig,
    ) -> Self {
        Self::with_eval_cache(
            gpu,
            program,
            launch,
            stalls,
            config,
            Arc::new(EvalCache::new()),
        )
    }

    /// Creates a game sharing an existing schedule-evaluation cache (e.g.
    /// one cache across every env of a `VecEnv`, or across games replaying
    /// the same kernel). Cache keys include the full evaluation context, so
    /// sharing across different kernels/launches/devices is always safe.
    #[must_use]
    pub fn with_eval_cache(
        gpu: GpuConfig,
        program: Program,
        launch: LaunchConfig,
        stalls: StallTable,
        config: GameConfig,
        cache: Arc<EvalCache>,
    ) -> Self {
        let analysis = analyze(&program, &stalls);
        let movable = analysis.movable_memory_indices();
        let ctx_key = context_key(&gpu, &launch, &config.measure);
        let measurement = cache
            .get_or_insert_with(combine_keys(ctx_key, program_key(&program)), || {
                measure(&gpu, &program, &launch, &config.measure)
            });
        let runtime = measurement.mean_us;
        let digest = measurement.run.sm.output_digest;
        let action_slots = movable.len();
        let mut game = AssemblyGame {
            gpu,
            launch,
            config,
            stalls,
            initial: program.clone(),
            initial_runtime: runtime,
            initial_digest: digest,
            current: program.clone(),
            current_runtime: runtime,
            analysis,
            movable,
            mask: Vec::new(),
            steps_in_episode: 0,
            best: program,
            best_runtime: runtime,
            action_slots,
            trace: Vec::new(),
            cache,
            context_key: ctx_key,
        };
        game.refresh_mask();
        game
    }

    /// The schedule-evaluation cache backing this game.
    #[must_use]
    pub fn eval_cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// Runtime of the unmodified `-O3` schedule in microseconds.
    #[must_use]
    pub fn initial_runtime_us(&self) -> f64 {
        self.initial_runtime
    }

    /// The best schedule found so far and its runtime in microseconds.
    #[must_use]
    pub fn best(&self) -> (&Program, f64) {
        (&self.best, self.best_runtime)
    }

    /// The output digest of the unmodified schedule (used by probabilistic
    /// testing).
    #[must_use]
    pub fn initial_digest(&self) -> u64 {
        self.initial_digest
    }

    /// The static analysis of the initial schedule.
    #[must_use]
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The moves applied since the last reset (inference-mode trace, §5.7).
    #[must_use]
    pub fn trace(&self) -> &[Move] {
        &self.trace
    }

    /// Measures a program with the game's protocol, answering revisited
    /// schedules from the shared evaluation cache.
    fn measure_program(&self, program: &Program) -> (f64, u64, u64) {
        let m = self.cached_measurement(program);
        (m.mean_us, m.run.sm.hazards, m.run.sm.output_digest)
    }

    /// The full cached measurement of a schedule under the game's protocol.
    pub fn cached_measurement(&self, program: &Program) -> Measurement {
        self.cache
            .get_or_insert_with(combine_keys(self.context_key, program_key(program)), || {
                measure(&self.gpu, program, &self.launch, &self.config.measure)
            })
    }

    fn refresh_state(&mut self) {
        self.analysis = analyze(&self.current, &self.stalls);
        self.movable = self.analysis.movable_memory_indices();
        self.refresh_mask();
    }

    fn refresh_mask(&mut self) {
        let mut mask = action_mask(&self.current, &self.movable, &self.analysis, &self.stalls);
        mask.resize((self.action_slots * 2).max(1), false);
        self.mask = mask;
    }
}

/// The serialized form of an [`AssemblyGame`]'s mutable state (see
/// [`Env::state_bytes`]): everything `reset`/`step` mutate, with runtimes
/// stored as exact `f64` bit patterns. Static context (device, launch,
/// stall table, initial schedule) is *not* serialized — the snapshot must be
/// restored onto a game constructed for the same kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GameSnapshot {
    current: String,
    current_runtime_bits: u64,
    steps_in_episode: usize,
    best: String,
    best_runtime_bits: u64,
    trace: Vec<Move>,
}

impl Env for AssemblyGame {
    fn reset(&mut self) -> Matrix {
        self.current = self.initial.clone();
        self.current_runtime = self.initial_runtime;
        self.steps_in_episode = 0;
        self.trace.clear();
        self.refresh_state();
        embed_program(&self.current, &self.analysis, &self.gpu.arch)
    }

    fn step(&mut self, action_id: usize) -> Step {
        let action = Action::from_id(action_id);
        self.steps_in_episode += 1;
        let mut reward = 0.0;
        if let Some(&index) = self.movable.get(action.slot) {
            let moved_text = self
                .current
                .instruction(index)
                .map(ToString::to_string)
                .unwrap_or_default();
            let (a, b) = match action.direction {
                Direction::Up => (index.saturating_sub(1), index),
                Direction::Down => (index, index + 1),
            };
            if a != b && self.current.swap_instructions(a, b).is_ok() {
                let (runtime, hazards, digest) = self.measure_program(&self.current);
                // Reward (equation 3): relative improvement scaled by 100.
                reward = ((self.current_runtime - runtime) / self.initial_runtime * 100.0) as f32;
                if hazards > 0 || digest != self.initial_digest {
                    // A corrupted schedule (should be prevented by masking):
                    // revert and punish.
                    let _ = self.current.swap_instructions(a, b);
                    reward = -10.0;
                } else {
                    self.current_runtime = runtime;
                    let moved = match action.direction {
                        Direction::Up => b,
                        Direction::Down => a,
                    };
                    self.trace.push(Move {
                        instruction: moved,
                        direction: action.direction,
                        text: moved_text,
                        reward,
                    });
                    if runtime < self.best_runtime {
                        self.best_runtime = runtime;
                        self.best = self.current.clone();
                    }
                }
                self.refresh_state();
            }
        }
        let done = self.steps_in_episode >= self.config.episode_length
            || !self.action_mask().iter().any(|&m| m);
        Step {
            observation: embed_program(&self.current, &self.analysis, &self.gpu.arch),
            reward,
            done,
        }
    }

    fn action_count(&self) -> usize {
        (self.action_slots * 2).max(1)
    }

    fn action_mask(&self) -> Vec<bool> {
        self.mask.clone()
    }

    fn observation_features(&self) -> usize {
        feature_count(&self.analysis)
    }

    /// Serializes the game's mutable state (current/best schedules, their
    /// runtimes as exact bit patterns, episode progress and move trace) so
    /// an RL training run over this game can be checkpointed and resumed
    /// bit-identically.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        let snapshot = GameSnapshot {
            current: self.current.to_string(),
            current_runtime_bits: self.current_runtime.to_bits(),
            steps_in_episode: self.steps_in_episode,
            best: self.best.to_string(),
            best_runtime_bits: self.best_runtime.to_bits(),
            trace: self.trace.clone(),
        };
        Some(serde_json::to_string(&snapshot).ok()?.into_bytes())
    }

    /// Restores a [`Env::state_bytes`] snapshot onto a game constructed for
    /// the same kernel (same program length, device, launch and protocol).
    /// Returns `false` — leaving the game unchanged — when the bytes do not
    /// decode or the schedules do not belong to this kernel.
    fn restore_state(&mut self, state: &[u8]) -> bool {
        let Ok(text) = std::str::from_utf8(state) else {
            return false;
        };
        let Ok(snapshot) = serde_json::from_str::<GameSnapshot>(text) else {
            return false;
        };
        let Ok(current) = snapshot.current.parse::<Program>() else {
            return false;
        };
        let Ok(best) = snapshot.best.parse::<Program>() else {
            return false;
        };
        // The game only ever reorders instructions, so any reachable state
        // is a permutation of the initial schedule. A snapshot from a
        // different kernel — even one with the same instruction count —
        // fails this multiset check instead of being silently adopted.
        let multiset = |program: &Program| {
            let mut texts: Vec<String> = program.instructions().map(ToString::to_string).collect();
            texts.sort_unstable();
            texts
        };
        let initial = multiset(&self.initial);
        if multiset(&current) != initial || multiset(&best) != initial {
            return false;
        }
        self.current = current;
        self.current_runtime = f64::from_bits(snapshot.current_runtime_bits);
        self.steps_in_episode = snapshot.steps_in_episode;
        self.best = best;
        self.best_runtime = f64::from_bits(snapshot.best_runtime_bits);
        self.trace = snapshot.trace;
        self.refresh_state();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};

    fn small_game() -> AssemblyGame {
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        AssemblyGame::new(
            GpuConfig::small(),
            kernel.program,
            kernel.launch,
            StallTable::builtin_a100(),
            GameConfig::default(),
        )
    }

    #[test]
    fn reset_produces_an_observation_matching_the_schedule() {
        let mut game = small_game();
        let obs = game.reset();
        assert_eq!(obs.cols(), game.observation_features());
        assert!(obs.rows() > 20);
        assert!(game.action_count() >= 2);
        assert_eq!(game.action_mask().len(), game.action_count());
    }

    #[test]
    fn greedy_exploration_improves_the_schedule_without_corruption() {
        let mut game = small_game();
        let _ = game.reset();
        let initial = game.initial_runtime_us();
        // Greedily take the first few legal actions that yield positive
        // reward; the game must never accept a corrupted schedule.
        let mut improved = 0;
        for _ in 0..12 {
            let mask = game.action_mask();
            let Some(action) = mask.iter().position(|&m| m) else {
                break;
            };
            let step = game.step(action);
            if step.reward > 0.0 {
                improved += 1;
            }
            if step.done {
                break;
            }
        }
        let (_, best_runtime) = game.best();
        assert!(best_runtime <= initial);
        assert!(!game.trace().is_empty() || improved == 0);
    }

    #[test]
    fn state_snapshot_round_trips_onto_a_fresh_game() {
        let mut game = small_game();
        let _ = game.reset();
        for _ in 0..4 {
            let mask = game.action_mask();
            let Some(action) = mask.iter().position(|&m| m) else {
                break;
            };
            game.step(action);
        }
        let state = game.state_bytes().expect("assembly game snapshots");
        let mut restored = small_game();
        assert!(restored.restore_state(&state));
        assert_eq!(restored.trace(), game.trace());
        assert_eq!(restored.best().1.to_bits(), game.best().1.to_bits());
        assert_eq!(restored.best().0.to_string(), game.best().0.to_string());
        assert_eq!(restored.action_mask(), game.action_mask());
        // The two games continue identically.
        let mask = game.action_mask();
        if let Some(action) = mask.iter().position(|&m| m) {
            let a = game.step(action);
            let b = restored.step(action);
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
            assert_eq!(a.done, b.done);
            assert_eq!(a.observation, b.observation);
        }
        // Garbage and foreign states are refused without panicking.
        assert!(!restored.restore_state(b"\xFF\xFE not json"));
        assert!(!restored.restore_state(b"{}"));
    }

    #[test]
    fn episode_terminates_after_the_configured_length() {
        let mut game = small_game();
        let _ = game.reset();
        let mut steps = 0;
        loop {
            let mask = game.action_mask();
            let action = mask.iter().position(|&m| m).unwrap_or(0);
            steps += 1;
            if game.step(action).done {
                break;
            }
            assert!(steps <= 64, "episode must terminate");
        }
        assert!(steps <= GameConfig::default().episode_length);
    }
}
