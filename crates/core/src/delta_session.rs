//! Per-game incremental evaluation sessions over [`gpusim::DeltaEngine`].
//!
//! The assembly game advances its schedule one adjacent swap at a time and
//! constantly measures near-duplicates of the current schedule (its own
//! steps, greedy probes, evolutionary mutations). A [`DeltaSession`] keeps a
//! **recorded base schedule** — a [`gpusim::DeltaBaseline`] with epoch
//! snapshots — and mirrors every swap onto the lowered
//! [`CompiledProgram`] in O(1), tracking exactly which instruction indices
//! differ from the base. Measuring the current schedule then resumes from
//! the latest safe snapshot and splices the baseline tail on reconvergence
//! instead of simulating from cycle zero.
//!
//! Every measurement a session produces is **bit-identical** to
//! [`gpusim::measure`] on the same schedule (the workspace
//! `delta_equivalence` suite proves it on random swap sequences across all
//! architecture profiles), so sessions compose transparently with the
//! shared [`crate::EvalCache`]: a value computed incrementally here answers
//! later lookups from games that would have simulated in full, and vice
//! versa.
//!
//! As accepted swaps accumulate, the differing window widens, the safe
//! resume point moves toward cycle zero, and the delta shrinks in value. The
//! session therefore **re-baselines** — records a fresh baseline at the
//! current schedule, recycling the old snapshots through the engine's pool —
//! once the drift exceeds a safety-valve number of indices. The policy only
//! moves work between identical-result code paths; it can never change a
//! measurement.

use std::sync::Arc;

use gpusim::{
    kernel_run_from_report, measurement_from_run, CompiledProgram, DeltaBaseline, DeltaEngine,
    DeltaOutcome, GpuConfig, LaunchConfig, MeasureOptions, Measurement, SmReport,
};
use sass::{Instruction, Item, Program};

/// Position-independent content key of one instruction (its text, control
/// code and operand flags), used to decide whether a slot still matches the
/// recorded base after in-place content edits.
fn content_key(inst: &Instruction) -> u64 {
    crate::eval_cache::item_key(&Item::Instr(inst.clone()))
}

/// Content keys of every instruction of `program`, in order.
fn content_keys(program: &Program) -> Vec<u64> {
    program.instructions().map(content_key).collect()
}

/// Re-baseline once this many instruction indices differ from the base.
///
/// Deliberately loose: a delta evaluation is never slower than a bare
/// simulation plus a near-empty state copy (it at worst re-runs from the
/// cycle-zero snapshot while still skipping the per-candidate recompile),
/// whereas recording a fresh baseline costs ~2x a bare run — and on kernels
/// whose mutations sit inside the main loop a fresh baseline does not move
/// the resume point anyway (the loop body is re-fetched from its first
/// iteration no matter the base). Re-baselining therefore only acts as a
/// safety valve against unbounded drift, not as an optimization.
const REBASE_DIFF_LIMIT: usize = 64;

/// One recorded base schedule, shared (via [`Arc`]) across game clones so
/// greedy probes and `VecEnv` workers fan out from the same snapshots.
#[derive(Debug)]
struct SessionBase {
    compiled: CompiledProgram,
    run: DeltaBaseline,
    /// Per-position instruction content keys of the base schedule.
    content: Vec<u64>,
}

/// The incremental evaluation session of one [`crate::AssemblyGame`].
#[derive(Debug)]
pub struct DeltaSession {
    engine: DeltaEngine,
    gpu: GpuConfig,
    launch: LaunchConfig,
    options: MeasureOptions,
    /// The base of the *initial* schedule, kept for episode resets.
    initial: Arc<SessionBase>,
    /// The base the current schedule is evaluated against.
    base: Arc<SessionBase>,
    /// The current schedule in lowered form, maintained swap by swap.
    current: CompiledProgram,
    /// `perm[i]` = index in `base.compiled` of the instruction now at `i`.
    perm: Vec<usize>,
    /// Per-position content keys of the current schedule; in-place content
    /// edits update them, swaps permute them alongside the instructions.
    current_content: Vec<u64>,
    /// Sorted positions where `current` differs from the base
    /// (`perm[i] != i`, or equal position but edited content).
    diff: Vec<usize>,
    /// Accepted swaps since the last (re-)baseline.
    commits_since_base: usize,
}

impl Clone for DeltaSession {
    fn clone(&self) -> Self {
        DeltaSession {
            // Engine clones start with an empty snapshot pool: pooled
            // buffers are a reuse optimization, never shared state.
            engine: self.engine.clone(),
            gpu: self.gpu.clone(),
            launch: self.launch.clone(),
            options: self.options.clone(),
            initial: Arc::clone(&self.initial),
            base: Arc::clone(&self.base),
            current: self.current.clone(),
            perm: self.perm.clone(),
            current_content: self.current_content.clone(),
            diff: self.diff.clone(),
            commits_since_base: self.commits_since_base,
        }
    }
}

impl DeltaSession {
    /// Compiles and records `program` as the session's initial base. Costs
    /// one instrumented full simulation — the same single simulation the
    /// first measurement of the schedule used to pay, now with snapshots.
    #[must_use]
    pub fn new(
        gpu: GpuConfig,
        launch: LaunchConfig,
        options: MeasureOptions,
        program: &Program,
    ) -> Self {
        let mut engine = DeltaEngine::for_launch(gpu.clone(), &launch);
        let compiled = CompiledProgram::compile(program, &gpu);
        let run = engine.record_baseline(&compiled);
        let content = content_keys(program);
        let base = Arc::new(SessionBase {
            compiled: compiled.clone(),
            run,
            content: content.clone(),
        });
        let perm = (0..compiled.len()).collect();
        DeltaSession {
            engine,
            gpu,
            launch,
            options,
            initial: Arc::clone(&base),
            base,
            current: compiled,
            perm,
            current_content: content,
            diff: Vec::new(),
            commits_since_base: 0,
        }
    }

    fn measurement_of(&self, report: &SmReport) -> Measurement {
        let run = kernel_run_from_report(&self.gpu, &self.launch, *report);
        measurement_from_run(run, &self.options)
    }

    /// The measurement of the initial schedule, derived from the recorded
    /// baseline — bit-identical to [`gpusim::measure`] on it.
    #[must_use]
    pub fn initial_measurement(&self) -> Measurement {
        self.measurement_of(self.initial.run.report())
    }

    /// Mirrors `Program::swap_instructions(upper, upper + 1)` onto the
    /// lowered current schedule and the diff-vs-base bookkeeping. O(1) plus
    /// a binary search per touched index.
    pub fn apply_swap(&mut self, upper: usize) {
        let lower = upper + 1;
        if lower >= self.current.len() {
            return;
        }
        self.current.swap_insts(upper, lower);
        self.perm.swap(upper, lower);
        self.current_content.swap(upper, lower);
        self.update_diff_at(upper);
        self.update_diff_at(lower);
    }

    /// Mirrors an in-place content edit of the instruction at `index` (stall
    /// retune, barrier-wait change, reuse toggle) onto the lowered current
    /// schedule: the one slot is re-lowered and the diff-vs-base bookkeeping
    /// updated. `inst` is the instruction *after* the edit. O(1) plus a
    /// binary search.
    pub fn apply_replace(&mut self, index: usize, inst: &Instruction) {
        if index >= self.current.len() {
            return;
        }
        self.current.replace_inst(index, inst, &self.gpu);
        self.current_content[index] = content_key(inst);
        self.update_diff_at(index);
    }

    /// Recomputes whether position `index` differs from the base and updates
    /// the sorted diff set. A position differs when a different instruction
    /// sits there (`perm` moved) or the same instruction's content was
    /// edited.
    fn update_diff_at(&mut self, index: usize) {
        let differs =
            self.perm[index] != index || self.current_content[index] != self.base.content[index];
        match self.diff.binary_search(&index) {
            Ok(at) if !differs => {
                self.diff.remove(at);
            }
            Err(at) if differs => self.diff.insert(at, index),
            _ => {}
        }
    }

    /// Measures the current schedule incrementally against the base.
    /// Bit-identical to `gpusim::measure(&gpu, &current, &launch, &options)`.
    #[must_use]
    pub fn measure_current(&mut self) -> (Measurement, DeltaOutcome) {
        if self.diff.is_empty() {
            return (
                self.measurement_of(self.base.run.report()),
                DeltaOutcome::Unchanged,
            );
        }
        let (report, outcome) =
            self.engine
                .simulate_delta(&self.base.run, &self.current, &self.diff);
        (self.measurement_of(&report), outcome)
    }

    /// Notes that the last measured swap was accepted (the game's current
    /// schedule advanced). Re-baselines only when the drift from the
    /// recorded base exceeds the drift safety valve.
    pub fn commit(&mut self) {
        self.commits_since_base += 1;
        if self.diff.len() >= REBASE_DIFF_LIMIT {
            self.rebaseline();
        }
    }

    /// Records a fresh baseline at the current schedule, recycling the old
    /// base's snapshots (unless other clones still share it).
    fn rebaseline(&mut self) {
        let run = self.engine.record_baseline(&self.current);
        let fresh = Arc::new(SessionBase {
            compiled: self.current.clone(),
            run,
            content: self.current_content.clone(),
        });
        let retired = std::mem::replace(&mut self.base, fresh);
        // The initial base always has at least one other owner
        // (`self.initial`), so it is never recycled here.
        if let Ok(inner) = Arc::try_unwrap(retired) {
            self.engine.recycle_baseline(inner.run);
        }
        self.perm.clear();
        self.perm.extend(0..self.current.len());
        self.diff.clear();
        self.commits_since_base = 0;
    }

    /// Rewinds the session to the initial schedule (an episode reset): the
    /// initial base is re-adopted without any re-recording.
    pub fn reset_to_initial(&mut self) {
        let retired = std::mem::replace(&mut self.base, Arc::clone(&self.initial));
        if let Ok(inner) = Arc::try_unwrap(retired) {
            self.engine.recycle_baseline(inner.run);
        }
        self.current = self.base.compiled.clone();
        self.perm.clear();
        self.perm.extend(0..self.current.len());
        self.current_content = self.base.content.clone();
        self.diff.clear();
        self.commits_since_base = 0;
    }

    /// Re-synchronizes the session onto an arbitrary schedule (used when a
    /// checkpoint restore adopts a foreign-but-compatible state): compiles
    /// it and records a fresh baseline.
    pub fn resync(&mut self, program: &Program) {
        self.current = CompiledProgram::compile(program, &self.gpu);
        self.current_content = content_keys(program);
        self.rebaseline();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::measure;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W-:-:S04] MOV R8, 0x2000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B------:R-:W1:-:S02] LDG.E R3, [R8] ;
[B------:R-:W-:-:S04] MOV R20, 0x3 ;
[B------:R-:W-:-:S04] IMAD R21, R20, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R22, R21, R20, RZ ;
[B01----:R-:W-:-:S04] IADD3 R6, R2, R3, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn options() -> MeasureOptions {
        MeasureOptions {
            warmup: 0,
            repeats: 3,
            noise_std: 0.0,
            seed: 0,
        }
    }

    #[test]
    fn session_measurements_match_full_measure_through_swap_chains() {
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let mut program: Program = SAMPLE.parse().unwrap();
        let mut session = DeltaSession::new(gpu.clone(), launch.clone(), options(), &program);
        assert_eq!(
            session.initial_measurement(),
            measure(&gpu, &program, &launch, &options())
        );
        // Walk a chain of swaps, committing each, and cross-check every
        // intermediate schedule against the full pipeline (this crosses a
        // re-baseline boundary).
        for upper in [4, 5, 4, 0, 5, 4, 1, 5, 0] {
            program.swap_instructions(upper, upper + 1).unwrap();
            session.apply_swap(upper);
            let (incremental, _) = session.measure_current();
            let full = measure(&gpu, &program, &launch, &options());
            assert_eq!(incremental, full, "after swap at {upper}");
            session.commit();
        }
    }

    #[test]
    fn probe_and_revert_leaves_the_session_on_the_base_fast_path() {
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let program: Program = SAMPLE.parse().unwrap();
        let mut session = DeltaSession::new(gpu.clone(), launch, options(), &program);
        session.apply_swap(4);
        session.apply_swap(4); // revert the probe
        let (measurement, outcome) = session.measure_current();
        assert_eq!(outcome, DeltaOutcome::Unchanged);
        assert_eq!(measurement, session.initial_measurement());
    }

    #[test]
    fn reset_returns_to_the_initial_base_without_rerecording() {
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let mut program: Program = SAMPLE.parse().unwrap();
        let mut session = DeltaSession::new(gpu.clone(), launch.clone(), options(), &program);
        for upper in [4, 5, 0, 4, 5, 4] {
            program.swap_instructions(upper, upper + 1).unwrap();
            session.apply_swap(upper);
            let _ = session.measure_current();
            session.commit();
        }
        session.reset_to_initial();
        let (measurement, outcome) = session.measure_current();
        assert_eq!(outcome, DeltaOutcome::Unchanged);
        assert_eq!(
            measurement,
            measure(
                &gpu,
                &SAMPLE.parse::<Program>().unwrap(),
                &launch,
                &options()
            )
        );
    }
}
