//! Structured, machine-readable run telemetry.
//!
//! Every suite optimization can emit a [`RunManifest`]: a stable-schema JSON
//! artifact recording, per kernel, the reward curve of the best move trace,
//! the RL training series (per-update losses/entropy/KL) when the paper's
//! PPO strategy ran, the schedule-evaluation cache hit rate and the
//! wall-clock spent in each phase of the hierarchical search (autotune →
//! compile → assembly-game search → verification). The manifest is written
//! next to the persisted suite report in the schedule-cache directory, is
//! uploaded as a build artifact by CI, and is the input the perf-regression
//! tooling and any future dashboards consume.
//!
//! Schema stability: [`TELEMETRY_SCHEMA_VERSION`] is bumped on any
//! field-level change, and `docs/ARTIFACTS.md` documents the full schema.
//! Wall-clock fields are observability data — they are the only
//! non-deterministic values in the manifest, and consumers must not expect
//! them to be reproducible.

use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::eval_cache::EvalCacheStats;

/// Version of the telemetry JSON schema (see `docs/ARTIFACTS.md`).
///
/// v2 added the delta-engine counters (`delta_hits`, `delta_fallbacks`,
/// `delta_fallback_rate`) to [`CacheTelemetry`]. The new fields default to
/// zero on decode, so v1 manifests remain loadable (pinned by the
/// `v1_manifests_still_load` test).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 2;

/// Eval-cache effectiveness counters for one kernel search or a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheTelemetry {
    /// Schedule measurements answered from the cache.
    pub hits: u64,
    /// Schedule measurements that had to simulate (fully or incrementally).
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when nothing was measured.
    pub hit_rate: f64,
    /// Cache misses the delta engine answered incrementally (spliced or
    /// provably unchanged) instead of simulating from cycle zero.
    #[serde(default)]
    pub delta_hits: u64,
    /// Delta evaluations that fell back to re-simulating to completion.
    #[serde(default)]
    pub delta_fallbacks: u64,
    /// `delta_fallbacks / (delta_hits + delta_fallbacks)`, 0 when the delta
    /// engine never ran. CI gates this below 20% on the smoke matrix.
    #[serde(default)]
    pub delta_fallback_rate: f64,
}

impl CacheTelemetry {
    /// Builds the telemetry record from raw cache counters.
    #[must_use]
    pub fn from_stats(stats: EvalCacheStats) -> Self {
        let total = stats.hits + stats.misses;
        CacheTelemetry {
            hits: stats.hits,
            misses: stats.misses,
            hit_rate: if total == 0 {
                0.0
            } else {
                stats.hits as f64 / total as f64
            },
            delta_hits: stats.delta_hits,
            delta_fallbacks: stats.delta_fallbacks,
            delta_fallback_rate: stats.delta_fallback_rate(),
        }
    }

    /// Accumulates another record into this one, recomputing the rates.
    pub fn accumulate(&mut self, other: &CacheTelemetry) {
        self.hits += other.hits;
        self.misses += other.misses;
        let total = self.hits + self.misses;
        self.hit_rate = if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        };
        self.delta_hits += other.delta_hits;
        self.delta_fallbacks += other.delta_fallbacks;
        let attempts = self.delta_hits + self.delta_fallbacks;
        self.delta_fallback_rate = if attempts == 0 {
            0.0
        } else {
            self.delta_fallbacks as f64 / attempts as f64
        };
    }
}

/// Wall-clock spent in each phase of one hierarchical kernel optimization
/// (milliseconds). Non-deterministic by nature; informational only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Autotuning the kernel configuration.
    pub autotune_ms: f64,
    /// Compiling through the Triton-like pipeline (including the cubin
    /// interception).
    pub compile_ms: f64,
    /// Playing the assembly game (the search itself).
    pub search_ms: f64,
    /// Probabilistic verification of the winning schedule.
    pub verify_ms: f64,
    /// End-to-end wall clock of the kernel optimization.
    pub total_ms: f64,
}

impl PhaseTimings {
    /// Accumulates another kernel's timings into this aggregate.
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.autotune_ms += other.autotune_ms;
        self.compile_ms += other.compile_ms;
        self.search_ms += other.search_ms;
        self.verify_ms += other.verify_ms;
        self.total_ms += other.total_ms;
    }
}

/// Converts a measured [`Duration`] to fractional milliseconds.
#[must_use]
pub fn duration_ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// The RL training series of one kernel (present when the search strategy
/// was [`crate::Strategy::Rl`]): the per-update time series Figures 8 and 12
/// of the paper plot, re-exported verbatim from [`rl::TrainingStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingTelemetry {
    /// Environment steps collected.
    pub steps: usize,
    /// Episodic returns in completion order.
    pub episodic_returns: Vec<f32>,
    /// Approximate KL divergence per update.
    pub approx_kl: Vec<f32>,
    /// Mean policy entropy per update.
    pub entropy: Vec<f32>,
    /// Mean policy loss per update.
    pub policy_loss: Vec<f32>,
    /// Mean value loss per update.
    pub value_loss: Vec<f32>,
}

impl TrainingTelemetry {
    /// Builds the telemetry record from PPO training statistics.
    #[must_use]
    pub fn from_stats(stats: &rl::TrainingStats) -> Self {
        TrainingTelemetry {
            steps: stats.steps,
            episodic_returns: stats.episodic_returns.clone(),
            approx_kl: stats.approx_kl.clone(),
            entropy: stats.entropy.clone(),
            policy_loss: stats.policy_loss.clone(),
            value_loss: stats.value_loss.clone(),
        }
    }
}

/// Everything recorded about one kernel's optimization.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelTelemetry {
    /// Kernel name (cubin symbol).
    pub kernel: String,
    /// Runtime of the `-O3` baseline schedule, microseconds.
    pub baseline_us: f64,
    /// Runtime of the best schedule found, microseconds.
    pub optimized_us: f64,
    /// `baseline_us / optimized_us`.
    pub speedup: f64,
    /// Whether the winning schedule passed probabilistic verification.
    pub verified: bool,
    /// Whether the result came from the deploy-time schedule cache (§4.2)
    /// instead of a fresh search.
    pub from_deploy_cache: bool,
    /// Per-move rewards of the winning move trace (the reward curve).
    pub reward_curve: Vec<f32>,
    /// Eval-cache counters of this kernel's search.
    pub cache: CacheTelemetry,
    /// Wall-clock per phase of this kernel's optimization.
    pub phases: PhaseTimings,
    /// RL training series, when the strategy was PPO.
    pub training: Option<TrainingTelemetry>,
}

/// The aggregate telemetry manifest of one suite optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Telemetry schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Device profile the suite was optimized for.
    pub gpu: String,
    /// Workload-registry suite name (`"custom"` for ad-hoc spec lists).
    pub suite: String,
    /// Search strategy label.
    pub strategy: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Per-kernel telemetry, in suite order.
    pub kernels: Vec<KernelTelemetry>,
    /// Eval-cache counters summed over the suite.
    pub cache: CacheTelemetry,
    /// Phase wall-clock summed over the suite.
    pub phases: PhaseTimings,
    /// Geometric-mean speedup across the suite.
    pub geomean_speedup: f64,
    /// Number of kernels whose schedule verified.
    pub verified: usize,
}

impl RunManifest {
    /// Assembles a manifest from per-kernel telemetry plus run metadata,
    /// computing the aggregate cache and phase totals.
    #[must_use]
    pub fn new(
        gpu: impl Into<String>,
        suite: impl Into<String>,
        strategy: impl Into<String>,
        seed: u64,
        jobs: usize,
        kernels: Vec<KernelTelemetry>,
        geomean_speedup: f64,
    ) -> Self {
        let mut cache = CacheTelemetry::default();
        let mut phases = PhaseTimings::default();
        let mut verified = 0;
        for kernel in &kernels {
            cache.accumulate(&kernel.cache);
            phases.accumulate(&kernel.phases);
            verified += usize::from(kernel.verified);
        }
        RunManifest {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            gpu: gpu.into(),
            suite: suite.into(),
            strategy: strategy.into(),
            seed,
            jobs,
            kernels,
            cache,
            phases,
            geomean_speedup,
            verified,
        }
    }
}

/// Path of a run manifest inside a cache/report directory, keyed like the
/// suite report so different device/suite runs never overwrite each other.
#[must_use]
pub fn telemetry_path(dir: &Path, gpu: &str, suite: &str) -> PathBuf {
    dir.join(format!("{gpu}_{suite}_telemetry.json"))
}

/// Version of the sealed-manifest envelope ([`persist_run_manifest`]'s
/// on-disk wrapper). Bumped on any envelope-level change; the manifest's
/// own schema stays versioned by [`TELEMETRY_SCHEMA_VERSION`].
pub const MANIFEST_SEAL_VERSION: u32 = 1;

/// FNV-1a-64 over the manifest's compact-JSON serialization — the same
/// checksum family as the schedule store's entries and journal.
fn manifest_checksum(manifest: &RunManifest) -> Option<String> {
    let compact = serde_json::to_string(manifest).ok()?;
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in compact.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Some(format!("{hash:016x}"))
}

/// The on-disk envelope of a persisted manifest: the manifest plus a
/// schema-versioned checksum trailer, so a reader can tell silent
/// corruption from schema skew.
#[derive(Debug, Serialize, Deserialize)]
struct SealedManifest {
    /// [`MANIFEST_SEAL_VERSION`] at write time.
    seal_version: u32,
    /// FNV-1a-64 (hex) of the manifest's compact-JSON serialization.
    checksum: String,
    /// The manifest itself.
    manifest: RunManifest,
}

/// Why a persisted manifest could not be loaded ([`load_run_manifest_checked`]).
#[derive(Debug)]
pub enum ManifestError {
    /// The file exists but is not a decodable manifest (of either the
    /// sealed-envelope or the legacy bare layout).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Decoder detail.
        detail: String,
    },
    /// The envelope decodes but the manifest's content does not match its
    /// recorded checksum — silent corruption.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Corrupt { path, detail } => {
                write!(f, "corrupt telemetry manifest {}: {detail}", path.display())
            }
            ManifestError::ChecksumMismatch { path } => write!(
                f,
                "telemetry manifest {} fails its checksum",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Writes a run manifest into the directory: a sealed envelope
/// (checksum trailer, [`MANIFEST_SEAL_VERSION`]) published atomically via
/// temp file + rename, so a crash mid-persist leaves the previous
/// manifest intact — never a torn one.
///
/// # Errors
///
/// Returns an IO error when the directory cannot be created or written.
pub fn persist_run_manifest(dir: &Path, manifest: &RunManifest) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let sealed = SealedManifest {
        seal_version: MANIFEST_SEAL_VERSION,
        checksum: manifest_checksum(manifest).unwrap_or_default(),
        manifest: manifest.clone(),
    };
    let text = serde_json::to_string_pretty(&sealed)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let path = telemetry_path(dir, &manifest.gpu, &manifest.suite);
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let temp = dir.join(format!(".{stem}.tmp.{}", std::process::id()));
    std::fs::write(&temp, text)?;
    std::fs::rename(&temp, &path)
}

/// Loads a previously persisted run manifest with the full typed-error
/// path: `Ok(None)` when no manifest exists, [`ManifestError`] when one
/// exists but is damaged. Reads both the sealed envelope (verifying its
/// checksum) and the legacy bare layout older builds wrote.
///
/// # Errors
///
/// [`ManifestError::Corrupt`] when the file decodes as neither layout,
/// [`ManifestError::ChecksumMismatch`] when the envelope's checksum fails.
pub fn load_run_manifest_checked(
    dir: &Path,
    gpu: &str,
    suite: &str,
) -> Result<Option<RunManifest>, ManifestError> {
    let path = telemetry_path(dir, gpu, suite);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(None);
    };
    if let Ok(sealed) = serde_json::from_str::<SealedManifest>(&text) {
        if manifest_checksum(&sealed.manifest).as_deref() == Some(sealed.checksum.as_str()) {
            return Ok(Some(sealed.manifest));
        }
        return Err(ManifestError::ChecksumMismatch { path });
    }
    // Legacy bare manifests (pre-seal) have no checksum to verify; a
    // `kernels` array distinguishes a real one from arbitrary JSON.
    match serde_json::from_str::<RunManifest>(&text) {
        Ok(manifest) => Ok(Some(manifest)),
        Err(err) => Err(ManifestError::Corrupt {
            path,
            detail: err.to_string(),
        }),
    }
}

/// Loads a previously persisted run manifest, treating damage as absence
/// (the checked variant, [`load_run_manifest_checked`], distinguishes).
#[must_use]
pub fn load_run_manifest(dir: &Path, gpu: &str, suite: &str) -> Option<RunManifest> {
    load_run_manifest_checked(dir, gpu, suite).ok().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_telemetry_computes_rates() {
        let t = CacheTelemetry::from_stats(EvalCacheStats {
            hits: 3,
            misses: 1,
            delta_hits: 3,
            delta_fallbacks: 1,
        });
        assert_eq!(t.hit_rate, 0.75);
        assert_eq!(t.delta_fallback_rate, 0.25);
        let mut total = CacheTelemetry::default();
        assert_eq!(total.hit_rate, 0.0);
        total.accumulate(&t);
        total.accumulate(&CacheTelemetry::from_stats(EvalCacheStats {
            hits: 0,
            misses: 4,
            delta_hits: 0,
            delta_fallbacks: 3,
        }));
        assert_eq!(total.hits, 3);
        assert_eq!(total.misses, 5);
        assert_eq!(total.hit_rate, 0.375);
        assert_eq!(total.delta_hits, 3);
        assert_eq!(total.delta_fallbacks, 4);
        assert_eq!(total.delta_fallback_rate, 4.0 / 7.0);
    }

    #[test]
    fn v1_manifests_still_load() {
        // A literal schema-v1 manifest as PR 4 wrote it: no delta fields
        // anywhere. Decoding must succeed with the new counters defaulting
        // to zero — old CI artifacts and committed baselines stay readable.
        let v1 = r#"{
            "schema_version": 1,
            "gpu": "sim-a100-80gb-pcie",
            "suite": "table2",
            "strategy": "greedy",
            "seed": 7,
            "jobs": 4,
            "kernels": [
                {
                    "kernel": "k",
                    "baseline_us": 10.0,
                    "optimized_us": 8.0,
                    "speedup": 1.25,
                    "verified": true,
                    "from_deploy_cache": false,
                    "reward_curve": [0.5],
                    "cache": { "hits": 2, "misses": 2, "hit_rate": 0.5 },
                    "phases": {
                        "autotune_ms": 1.0,
                        "compile_ms": 2.0,
                        "search_ms": 3.0,
                        "verify_ms": 0.5,
                        "total_ms": 6.5
                    },
                    "training": null
                }
            ],
            "cache": { "hits": 2, "misses": 2, "hit_rate": 0.5 },
            "phases": {
                "autotune_ms": 1.0,
                "compile_ms": 2.0,
                "search_ms": 3.0,
                "verify_ms": 0.5,
                "total_ms": 6.5
            },
            "geomean_speedup": 1.25,
            "verified": 1
        }"#;
        let manifest: RunManifest = serde_json::from_str(v1).expect("v1 manifests must decode");
        assert_eq!(manifest.schema_version, 1);
        assert_eq!(manifest.cache.hits, 2);
        assert_eq!(manifest.cache.delta_hits, 0);
        assert_eq!(manifest.cache.delta_fallbacks, 0);
        assert_eq!(manifest.cache.delta_fallback_rate, 0.0);
        assert_eq!(manifest.kernels[0].cache.delta_hits, 0);
    }

    #[test]
    fn manifest_aggregates_and_round_trips_through_json() {
        let kernel = |name: &str, verified: bool| KernelTelemetry {
            kernel: name.to_string(),
            baseline_us: 10.0,
            optimized_us: 8.0,
            speedup: 1.25,
            verified,
            from_deploy_cache: false,
            reward_curve: vec![0.5, -0.25, 1.0],
            cache: CacheTelemetry {
                hits: 2,
                misses: 2,
                hit_rate: 0.5,
                delta_hits: 1,
                delta_fallbacks: 1,
                delta_fallback_rate: 0.5,
            },
            phases: PhaseTimings {
                autotune_ms: 1.0,
                compile_ms: 2.0,
                search_ms: 3.0,
                verify_ms: 0.5,
                total_ms: 6.5,
            },
            training: Some(TrainingTelemetry {
                steps: 64,
                episodic_returns: vec![1.0],
                approx_kl: vec![0.01],
                entropy: vec![1.5],
                policy_loss: vec![-0.2],
                value_loss: vec![0.4],
            }),
        };
        let manifest = RunManifest::new(
            "a100",
            "table2",
            "rl",
            7,
            4,
            vec![kernel("a", true), kernel("b", false)],
            1.25,
        );
        assert_eq!(manifest.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(manifest.verified, 1);
        assert_eq!(manifest.cache.hits, 4);
        assert_eq!(manifest.phases.total_ms, 13.0);
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn manifest_persists_keyed_by_gpu_and_suite() {
        let dir = std::env::temp_dir().join(format!(
            "cuasmrl-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let a = RunManifest::new("a100", "table2", "greedy", 0, 1, Vec::new(), 1.0);
        let b = RunManifest::new("a100", "attention", "greedy", 0, 1, Vec::new(), 1.0);
        persist_run_manifest(&dir, &a).unwrap();
        persist_run_manifest(&dir, &b).unwrap();
        assert_eq!(load_run_manifest(&dir, "a100", "table2"), Some(a));
        assert_eq!(load_run_manifest(&dir, "a100", "attention"), Some(b));
        assert_eq!(load_run_manifest(&dir, "hopper", "table2"), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    fn seal_test_dir(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cuasmrl-telemetry-seal-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn persisted_manifests_are_sealed_and_verified() {
        let dir = seal_test_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = RunManifest::new("a100", "service", "greedy", 0, 1, Vec::new(), 1.0);
        persist_run_manifest(&dir, &manifest).unwrap();
        // The envelope is on disk…
        let raw = std::fs::read_to_string(telemetry_path(&dir, "a100", "service")).unwrap();
        assert!(raw.contains("\"seal_version\""));
        assert!(raw.contains("\"checksum\""));
        // …and both loaders see through it.
        assert_eq!(
            load_run_manifest_checked(&dir, "a100", "service").unwrap(),
            Some(manifest.clone())
        );
        assert_eq!(load_run_manifest(&dir, "a100", "service"), Some(manifest));
        // No temp debris left behind by the atomic publish.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp file was renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_manifests_still_load_without_a_seal() {
        let dir = seal_test_dir("legacy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = RunManifest::new("a100", "service", "greedy", 0, 1, Vec::new(), 1.0);
        // What an older build wrote: the bare manifest, no envelope.
        std::fs::write(
            telemetry_path(&dir, "a100", "service"),
            serde_json::to_string_pretty(&manifest).unwrap(),
        )
        .unwrap();
        assert_eq!(
            load_run_manifest_checked(&dir, "a100", "service").unwrap(),
            Some(manifest)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_manifests_are_typed_errors_not_silence() {
        let dir = seal_test_dir("damage");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = telemetry_path(&dir, "a100", "service");

        // Structural damage → Corrupt.
        std::fs::write(&path, "{ torn-off mid-write").unwrap();
        assert!(matches!(
            load_run_manifest_checked(&dir, "a100", "service"),
            Err(ManifestError::Corrupt { .. })
        ));
        assert_eq!(load_run_manifest(&dir, "a100", "service"), None);

        // Content damage under a valid envelope → ChecksumMismatch.
        let manifest = RunManifest::new("a100", "service", "greedy", 0, 1, Vec::new(), 1.0);
        persist_run_manifest(&dir, &manifest).unwrap();
        let sealed = std::fs::read_to_string(&path).unwrap();
        let tampered = sealed.replace("\"geomean_speedup\": 1.0", "\"geomean_speedup\": 99.0");
        assert_ne!(sealed, tampered, "tamper target present");
        std::fs::write(&path, tampered).unwrap();
        assert!(matches!(
            load_run_manifest_checked(&dir, "a100", "service"),
            Err(ManifestError::ChecksumMismatch { .. })
        ));
        assert_eq!(load_run_manifest(&dir, "a100", "service"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
