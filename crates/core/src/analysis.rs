//! Pre-game static analysis passes (§3.2).
//!
//! Before the assembly game starts, three passes run over the disassembled
//! kernel:
//!
//! 1. a **stall-count inference** pass records, for every memory instruction
//!    that consumes the output of a fixed-latency instruction in the same
//!    basic block, the accumulated stall count between the def and the use;
//!    this either confirms a table entry or infers a new (safe, possibly
//!    over-estimated) latency for opcodes missing from the table. Memory
//!    instructions whose producers cannot be found inside the block are
//!    added to a **denylist** and never moved;
//! 2. an **embedding preparation** pass builds the operand/memory tables and
//!    records the maximum operand count (used for padding);
//! 3. a **memory instruction** pass counts the (non-denylisted) memory
//!    instructions, which defines the action space.

use std::collections::{HashMap, HashSet};

use sass::{Operand, Program, Register};
use serde::{Deserialize, Serialize};

use crate::stall_table::StallTable;

/// How a memory instruction's stall-count dependencies were resolved
/// (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resolution {
    /// Every fixed-latency producer was found in the built-in stall table.
    Table,
    /// At least one producer latency had to be inferred from the schedule.
    Inferred,
    /// A producer could not be resolved inside the basic block; the
    /// instruction is denylisted.
    Denylisted,
}

/// Breakdown of dependency resolutions over a kernel (Figure 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResolutionBreakdown {
    /// Memory instructions fully resolved by the built-in table.
    pub table: usize,
    /// Memory instructions that needed at least one inferred latency.
    pub inferred: usize,
    /// Denylisted memory instructions.
    pub denylisted: usize,
}

impl ResolutionBreakdown {
    /// Total classified memory instructions.
    #[must_use]
    pub fn total(&self) -> usize {
        self.table + self.inferred + self.denylisted
    }

    /// Percentages `(table, inferred, denylisted)` summing to ~100.
    #[must_use]
    pub fn percentages(&self) -> (f64, f64, f64) {
        let total = self.total().max(1) as f64;
        (
            self.table as f64 / total * 100.0,
            self.inferred as f64 / total * 100.0,
            self.denylisted as f64 / total * 100.0,
        )
    }
}

/// The result of the pre-game analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Stall table augmented with inferred entries.
    pub stalls: StallTable,
    /// Instruction indices of denylisted memory instructions (never moved).
    pub denylist: HashSet<usize>,
    /// Indices of all memory instructions.
    pub memory_indices: Vec<usize>,
    /// Map from register to a small integer used by the operand embedding.
    pub register_table: HashMap<Register, usize>,
    /// Maximum operand count over the kernel (embedding padding width).
    pub max_operands: usize,
    /// Figure 7 resolution breakdown.
    pub breakdown: ResolutionBreakdown,
}

impl Analysis {
    /// Memory instructions that may be moved (not denylisted).
    #[must_use]
    pub fn movable_memory_indices(&self) -> Vec<usize> {
        self.memory_indices
            .iter()
            .copied()
            .filter(|i| !self.denylist.contains(i))
            .collect()
    }
}

/// Runs the pre-game analysis passes over a program.
#[must_use]
pub fn analyze(program: &Program, builtin: &StallTable) -> Analysis {
    let instructions: Vec<_> = program.instructions().collect();
    let blocks = program.basic_blocks();
    let block_of = |idx: usize| blocks.iter().find(|b| b.contains(idx)).copied();

    let mut stalls = builtin.clone();
    let mut denylist = HashSet::new();
    let mut breakdown = ResolutionBreakdown::default();
    let memory_indices: Vec<usize> = program.memory_instruction_indices();
    // Hoisted per-instruction facts: the reverse scans below visit each
    // (memory instruction, use, producer candidate) triple, so decoding
    // defs/stalls/latency classes inside them is quadratic in block size.
    // Decoding once per instruction keeps the scans allocation-free without
    // changing a single comparison.
    let defs: Vec<Vec<Register>> = instructions.iter().map(|inst| inst.defs()).collect();
    let issue_stall: Vec<u64> = instructions
        .iter()
        .map(|inst| u64::from(inst.control().stall()).max(1))
        .collect();
    let fixed_latency: Vec<bool> = instructions
        .iter()
        .map(|inst| inst.opcode().latency_class() == sass::LatencyClass::Fixed)
        .collect();
    // Registers that are never written anywhere in the kernel are inputs set
    // up by the driver (e.g. uniform descriptor registers); they carry no
    // intra-kernel dependence.
    let ever_defined: HashSet<Register> = defs.iter().flatten().copied().collect();

    // Pass 1: stall-count inference / denylist construction.
    for &mem_idx in &memory_indices {
        let Some(block) = block_of(mem_idx) else {
            denylist.insert(mem_idx);
            breakdown.denylisted += 1;
            continue;
        };
        let uses = instructions[mem_idx].uses();
        let mut all_in_table = true;
        let mut any_unresolved = false;
        for reg in uses {
            // Scan preceding instructions within the block for the defining
            // instruction, accumulating stall counts along the way.
            let mut accumulated: u64 = 0;
            let mut found = false;
            for j in (block.start..mem_idx).rev() {
                accumulated += issue_stall[j];
                if defs[j].contains(&reg) {
                    found = true;
                    if fixed_latency[j] {
                        let name = instructions[j].opcode().full_name();
                        if builtin.lookup(&name).is_none() {
                            // Infer: the original schedule is valid, so the
                            // accumulated distance is a safe (possibly
                            // over-estimated) latency for this opcode.
                            stalls.insert_min(name, accumulated.min(15) as u8);
                            all_in_table = false;
                        }
                    }
                    break;
                }
            }
            if !found && ever_defined.contains(&reg) {
                // Defined outside the basic block (or by a variable-latency
                // instruction protected by barriers elsewhere): if no
                // definition is visible at all within the block and the
                // register is not protected by a wait barrier, the
                // dependence cannot be checked — denylist the instruction.
                let protected = instructions[mem_idx].control().wait_mask() != 0;
                if !protected {
                    any_unresolved = true;
                }
            }
        }
        if any_unresolved {
            denylist.insert(mem_idx);
            breakdown.denylisted += 1;
        } else if all_in_table {
            breakdown.table += 1;
        } else {
            breakdown.inferred += 1;
        }
    }

    // Pass 2: embedding preparation.
    let mut register_table = HashMap::new();
    for inst in &instructions {
        for operand in inst.operands() {
            for reg in operand.registers() {
                let next = register_table.len();
                register_table.entry(reg).or_insert(next);
            }
        }
        // Memory locations referenced through constant banks also get slots.
        for operand in inst.operands() {
            if let Operand::Const { .. } = operand {
                // Constants are embedded by value, no table entry needed.
            }
        }
    }
    let max_operands = program.max_operand_count();

    Analysis {
        stalls,
        denylist,
        memory_indices,
        register_table,
        max_operands,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x100 ;
[B------:R-:W-:-:S05] FROBNICATE R8, R4, 0x2 ;
[B------:R-:W-:-:S02] STG.E [R4], R8 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
.L_next:
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S02] STG.E [R6], R4 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn sample_analysis() -> Analysis {
        let program: Program = SAMPLE.parse().unwrap();
        analyze(&program, &StallTable::builtin_a100())
    }

    #[test]
    fn memory_instructions_are_found() {
        let analysis = sample_analysis();
        assert_eq!(analysis.memory_indices, vec![2, 3, 5]);
    }

    #[test]
    fn unknown_fixed_latency_producers_are_inferred_from_the_schedule() {
        let analysis = sample_analysis();
        // FROBNICATE is not in the table; the distance to its consumer STG
        // is its own stall count (5), which becomes the inferred latency.
        assert_eq!(analysis.stalls.lookup("FROBNICATE"), Some(5));
        assert!(analysis.breakdown.inferred >= 1);
    }

    #[test]
    fn producers_outside_the_block_denylist_the_consumer() {
        let analysis = sample_analysis();
        // The final STG uses R4, which is defined in the *previous* block
        // and not protected by a wait barrier; the cross-block dependence
        // denylists it.
        assert!(analysis.denylist.contains(&5));
        assert!(analysis.breakdown.denylisted >= 1);
        // Denylisted instructions are excluded from the movable set.
        assert!(!analysis.movable_memory_indices().contains(&5));
        assert!(analysis.movable_memory_indices().contains(&2));
    }

    #[test]
    fn table_resolved_instructions_are_counted() {
        let analysis = sample_analysis();
        assert!(analysis.breakdown.table >= 1);
        let (db, inf, deny) = analysis.breakdown.percentages();
        assert!((db + inf + deny - 100.0).abs() < 1e-9);
    }

    #[test]
    fn register_table_and_padding_width_are_recorded() {
        let analysis = sample_analysis();
        assert!(analysis.register_table.contains_key(&Register::Gpr(4)));
        assert!(analysis.max_operands >= 3);
    }

    #[test]
    fn generated_kernels_mostly_resolve_from_the_table() {
        // Figure 7: on the evaluated kernels a large fraction of stall-count
        // dependencies resolve from the built-in table, some are inferred,
        // and some are denylisted.
        use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let kernel = generate(
            &spec,
            &KernelConfig::default_compute(),
            ScheduleStyle::Baseline,
        );
        let analysis = analyze(&kernel.program, &StallTable::builtin_a100());
        assert!(analysis.breakdown.total() > 0);
        assert!(analysis.breakdown.table > 0);
        assert!(!analysis.movable_memory_indices().is_empty());
    }
}
