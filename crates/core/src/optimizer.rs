//! The CuAsmRL optimizer: hierarchical search (§3.1), Triton-pipeline
//! integration (§4.1), the offline-search / deploy-time-lookup workflow
//! (§4.2), probabilistic verification, and the non-RL search baselines the
//! paper discusses in §7.

use std::collections::HashMap;
use std::path::PathBuf;

use gpusim::{GpuConfig, MeasureOptions};
use kernels::{Autotuner, ConfigSpace, KernelSpec, TritonPipeline};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rl::{CancelToken, Env, PpoConfig, PpoTrainer};
use sass::{Cubin, Program};
use serde::{Deserialize, Serialize};

use crate::game::{AssemblyGame, GameConfig, Move};
use crate::stall_table::StallTable;
use crate::telemetry::{duration_ms, CacheTelemetry, KernelTelemetry, TrainingTelemetry};

/// The search strategy used to play the assembly game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Proximal policy optimization (the paper's default).
    Rl(PpoConfig),
    /// Greedy hill climbing: repeatedly apply the best immediately-improving
    /// action.
    Greedy {
        /// Maximum number of moves.
        max_moves: usize,
    },
    /// Uniform random search over legal actions.
    Random {
        /// Number of random actions to try.
        steps: usize,
        /// Random seed.
        seed: u64,
    },
    /// (1+1) evolutionary search: mutate the best schedule by a short random
    /// action sequence and keep the mutant if it is faster (§7).
    Evolutionary {
        /// Number of generations.
        generations: usize,
        /// Moves per mutation.
        mutation_length: usize,
        /// Random seed.
        seed: u64,
    },
}

impl Strategy {
    /// A short label for reports and telemetry manifests.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Rl(_) => "rl",
            Strategy::Greedy { .. } => "greedy",
            Strategy::Random { .. } => "random",
            Strategy::Evolutionary { .. } => "evolutionary",
        }
    }
}

/// Result of optimizing one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizationReport {
    /// Kernel name (cubin symbol).
    pub kernel: String,
    /// Runtime of the `-O3` (Triton) schedule, in microseconds.
    pub baseline_us: f64,
    /// Runtime of the best schedule found, in microseconds.
    pub optimized_us: f64,
    /// `baseline_us / optimized_us`.
    pub speedup: f64,
    /// Whether the optimized schedule passed probabilistic verification.
    pub verified: bool,
    /// The optimized schedule (text form).
    pub optimized_listing: String,
    /// The reordering trace that produced the best schedule.
    pub moves: Vec<Move>,
}

/// The CuAsmRL optimizer.
#[derive(Debug, Clone)]
pub struct CuAsmRl {
    gpu: GpuConfig,
    stalls: StallTable,
    game_config: GameConfig,
    strategy: Strategy,
    cache_dir: Option<PathBuf>,
}

impl CuAsmRl {
    /// Creates an optimizer with the stall table of the device's
    /// architecture backend and default game settings.
    #[must_use]
    pub fn new(gpu: GpuConfig, strategy: Strategy) -> Self {
        let stalls = StallTable::for_arch(&gpu.arch);
        CuAsmRl {
            gpu,
            stalls,
            game_config: GameConfig::default(),
            strategy,
            cache_dir: None,
        }
    }

    /// Overrides the stall table (e.g. with a freshly micro-benchmarked one).
    #[must_use]
    pub fn with_stall_table(mut self, stalls: StallTable) -> Self {
        self.stalls = stalls;
        self
    }

    /// Overrides the game configuration.
    #[must_use]
    pub fn with_game_config(mut self, config: GameConfig) -> Self {
        self.game_config = config;
        self
    }

    /// Enables the deploy-time lookup cache in the given directory (§4.2).
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    fn cache_path(&self, kernel: &str) -> Option<PathBuf> {
        self.cache_dir
            .as_ref()
            .map(|d| d.join(format!("{}_{kernel}.json", self.gpu.name)))
    }

    /// Looks up a previously optimized kernel in the cache.
    #[must_use]
    pub fn lookup(&self, kernel: &str) -> Option<OptimizationReport> {
        let path = self.cache_path(kernel)?;
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    pub(crate) fn store(&self, report: &OptimizationReport) {
        if let Some(path) = self.cache_path(&report.kernel) {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Ok(text) = serde_json::to_string_pretty(report) {
                let _ = std::fs::write(path, text);
            }
        }
    }

    /// Full hierarchical optimization (§3.1): autotune the kernel
    /// configuration, compile with the Triton-like pipeline, intercept the
    /// cubin, play the assembly game, and write the optimized kernel section
    /// back into the cubin.
    ///
    /// # Panics
    ///
    /// Panics if the compiled cubin does not contain the expected kernel
    /// (which would be a pipeline bug).
    pub fn optimize_spec(
        &self,
        spec: &KernelSpec,
        space: &ConfigSpace,
        tune_options: &MeasureOptions,
    ) -> (OptimizationReport, Cubin) {
        let (report, cubin, _telemetry) =
            self.optimize_spec_instrumented(spec, space, tune_options);
        (report, cubin)
    }

    /// [`CuAsmRl::optimize_spec`] plus the structured telemetry of the run:
    /// wall-clock per phase (autotune / compile / search / verify), the
    /// winning reward curve, eval-cache hit rates and — when the strategy is
    /// [`Strategy::Rl`] — the full PPO training series.
    ///
    /// # Panics
    ///
    /// Panics if the compiled cubin does not contain the expected kernel
    /// (which would be a pipeline bug).
    pub fn optimize_spec_instrumented(
        &self,
        spec: &KernelSpec,
        space: &ConfigSpace,
        tune_options: &MeasureOptions,
    ) -> (OptimizationReport, Cubin, KernelTelemetry) {
        let (report, cubin, telemetry, _preempted) =
            self.optimize_spec_instrumented_with(spec, space, tune_options, &CancelToken::new());
        (report, cubin, telemetry)
    }

    /// [`CuAsmRl::optimize_spec_instrumented`] with cooperative preemption:
    /// the search polls `cancel` at its step/update boundaries and, once the
    /// token fires, stops early and reports its best-schedule-so-far. The
    /// returned flag says whether the run was preempted; a preempted report
    /// is **not** written to the deploy cache (it is a degraded partial
    /// answer, not the converged one).
    ///
    /// # Panics
    ///
    /// Panics if the compiled cubin does not contain the expected kernel
    /// (which would be a pipeline bug).
    pub fn optimize_spec_instrumented_with(
        &self,
        spec: &KernelSpec,
        space: &ConfigSpace,
        tune_options: &MeasureOptions,
        cancel: &CancelToken,
    ) -> (OptimizationReport, Cubin, KernelTelemetry, bool) {
        let run_start = std::time::Instant::now();
        let (compiled, autotune_ms, compile_ms) = self.compile_spec(spec, space, tune_options);
        if let Some(hit) = self.lookup(&compiled.name) {
            let mut cubin = compiled.cubin.clone();
            if let Ok(program) = hit.optimized_listing.parse::<Program>() {
                let _ = cubin.replace_kernel_section(&compiled.name, &program);
            }
            let mut telemetry = KernelTelemetry {
                kernel: hit.kernel.clone(),
                baseline_us: hit.baseline_us,
                optimized_us: hit.optimized_us,
                speedup: hit.speedup,
                verified: hit.verified,
                from_deploy_cache: true,
                reward_curve: hit.moves.iter().map(|m| m.reward).collect(),
                ..KernelTelemetry::default()
            };
            telemetry.phases.autotune_ms = autotune_ms;
            telemetry.phases.compile_ms = compile_ms;
            telemetry.phases.total_ms = duration_ms(run_start.elapsed());
            return (hit, cubin, telemetry, false);
        }
        let program = compiled
            .cubin
            .kernel_program(&compiled.name)
            .expect("compiled cubin must contain the kernel");
        let (report, mut telemetry, preempted) = self.optimize_program_instrumented_with(
            &compiled.name,
            program,
            compiled.launch.clone(),
            cancel,
        );
        let mut cubin = compiled.cubin;
        if let Ok(optimized) = report.optimized_listing.parse::<Program>() {
            let _ = cubin.replace_kernel_section(&compiled.name, &optimized);
        }
        if !preempted {
            self.store(&report);
        }
        telemetry.phases.autotune_ms = autotune_ms;
        telemetry.phases.compile_ms = compile_ms;
        telemetry.phases.total_ms = duration_ms(run_start.elapsed());
        (report, cubin, telemetry, preempted)
    }

    /// The autotune + compile front half of the hierarchical search (§3.1):
    /// grid-searches the configuration space, compiles the winner through
    /// the Triton-like pipeline and returns the compiled kernel plus the
    /// wall-clock of both phases.
    pub(crate) fn compile_spec(
        &self,
        spec: &KernelSpec,
        space: &ConfigSpace,
        tune_options: &MeasureOptions,
    ) -> (kernels::CompiledKernel, f64, f64) {
        let autotune_start = std::time::Instant::now();
        let tuner = Autotuner::new(self.gpu.clone()).with_options(tune_options.clone());
        let tuning = tuner.tune(spec, space);
        let autotune_ms = duration_ms(autotune_start.elapsed());
        let compile_start = std::time::Instant::now();
        let pipeline = TritonPipeline::new(self.gpu.clone());
        let compiled = pipeline.compile(spec, &tuning.best);
        let compile_ms = duration_ms(compile_start.elapsed());
        (compiled, autotune_ms, compile_ms)
    }

    /// Builds the assembly game this optimizer plays for one compiled
    /// kernel program.
    pub(crate) fn build_game(
        &self,
        program: Program,
        launch: gpusim::LaunchConfig,
    ) -> AssemblyGame {
        AssemblyGame::new(
            self.gpu.clone(),
            program,
            launch,
            self.stalls.clone(),
            self.game_config.clone(),
        )
    }

    /// The PPO configuration of an [`Strategy::Rl`] optimizer, if that is
    /// the configured strategy.
    #[must_use]
    pub fn rl_config(&self) -> Option<&PpoConfig> {
        match &self.strategy {
            Strategy::Rl(config) => Some(config),
            _ => None,
        }
    }

    /// Optimizes an already-compiled SASS schedule.
    pub fn optimize_program(
        &self,
        kernel: &str,
        program: Program,
        launch: gpusim::LaunchConfig,
    ) -> OptimizationReport {
        self.optimize_program_instrumented(kernel, program, launch)
            .0
    }

    /// [`CuAsmRl::optimize_program`] plus the structured telemetry of the
    /// search (search/verify wall clock, reward curve, eval-cache counters,
    /// PPO training series when applicable). The autotune/compile/total
    /// phase timings are zero here — [`CuAsmRl::optimize_spec_instrumented`]
    /// fills them in when the full hierarchical pipeline runs.
    pub fn optimize_program_instrumented(
        &self,
        kernel: &str,
        program: Program,
        launch: gpusim::LaunchConfig,
    ) -> (OptimizationReport, KernelTelemetry) {
        let (report, telemetry, _preempted) =
            self.optimize_program_instrumented_with(kernel, program, launch, &CancelToken::new());
        (report, telemetry)
    }

    /// [`CuAsmRl::optimize_program_instrumented`] with cooperative
    /// preemption (see [`CuAsmRl::optimize_spec_instrumented_with`]). Every
    /// strategy polls the token at its natural boundary — a PPO update, a
    /// greedy move, a random step, an evolutionary generation — and a fired
    /// token makes the search finalize its best-schedule-so-far. The
    /// returned flag says whether the run was preempted.
    pub fn optimize_program_instrumented_with(
        &self,
        kernel: &str,
        program: Program,
        launch: gpusim::LaunchConfig,
        cancel: &CancelToken,
    ) -> (OptimizationReport, KernelTelemetry, bool) {
        let search_start = std::time::Instant::now();
        let mut game = AssemblyGame::new(
            self.gpu.clone(),
            program,
            launch,
            self.stalls.clone(),
            self.game_config.clone(),
        );
        let mut training = None;
        let (moves, preempted) = match &self.strategy {
            Strategy::Rl(config) => {
                let (moves, stats, preempted) = run_rl(&mut game, config.clone(), cancel);
                training = Some(TrainingTelemetry::from_stats(&stats));
                (moves, preempted)
            }
            Strategy::Greedy { max_moves } => run_greedy(&mut game, *max_moves, cancel),
            Strategy::Random { steps, seed } => run_random(&mut game, *steps, *seed, cancel),
            Strategy::Evolutionary {
                generations,
                mutation_length,
                seed,
            } => run_evolutionary(&mut game, *generations, *mutation_length, *seed, cancel),
        };
        let search_ms = duration_ms(search_start.elapsed());
        let (report, verify_ms) = finalize_search(kernel, &game, moves);
        let telemetry = search_telemetry(&report, &game, training, search_ms, verify_ms);
        (report, telemetry, preempted)
    }
}

/// Builds the [`OptimizationReport`] of a finished search: reads the game's
/// best schedule, runs probabilistic verification (§4.1 — the optimized
/// schedule must produce the same outputs as the original and run without
/// hazards; the best schedule was measured during the search, so this
/// answers from the game's evaluation cache) and returns the report plus the
/// verification wall-clock.
pub(crate) fn finalize_search(
    kernel: &str,
    game: &AssemblyGame,
    moves: Vec<Move>,
) -> (OptimizationReport, f64) {
    let baseline_us = game.initial_runtime_us();
    let (best, optimized_us) = game.best();
    let best = best.clone();
    let verify_start = std::time::Instant::now();
    let verification = game.cached_measurement(&best);
    let verified = verification.run.sm.hazards == 0
        && verification.run.sm.output_digest == game.initial_digest();
    let verify_ms = duration_ms(verify_start.elapsed());
    let report = OptimizationReport {
        kernel: kernel.to_string(),
        baseline_us,
        optimized_us,
        speedup: baseline_us / optimized_us.max(1e-9),
        verified,
        optimized_listing: best.to_string(),
        moves,
    };
    (report, verify_ms)
}

/// Assembles the [`KernelTelemetry`] of a finished (non-deploy-cache)
/// search from its report, the game's eval-cache counters and the measured
/// search/verify wall-clock.
pub(crate) fn search_telemetry(
    report: &OptimizationReport,
    game: &AssemblyGame,
    training: Option<TrainingTelemetry>,
    search_ms: f64,
    verify_ms: f64,
) -> KernelTelemetry {
    let mut telemetry = KernelTelemetry {
        kernel: report.kernel.clone(),
        baseline_us: report.baseline_us,
        optimized_us: report.optimized_us,
        speedup: report.speedup,
        verified: report.verified,
        from_deploy_cache: false,
        reward_curve: report.moves.iter().map(|m| m.reward).collect(),
        cache: CacheTelemetry::from_stats(game.eval_cache().stats()),
        training,
        ..KernelTelemetry::default()
    };
    telemetry.phases.search_ms = search_ms;
    telemetry.phases.verify_ms = verify_ms;
    telemetry
}

fn run_rl(
    game: &mut AssemblyGame,
    config: PpoConfig,
    cancel: &CancelToken,
) -> (Vec<Move>, rl::TrainingStats, bool) {
    let features = game.observation_features();
    let actions = game.action_count();
    let mut trainer = PpoTrainer::new(config, features, actions);
    let finished = trainer.train_updates_until(game, usize::MAX, cancel);
    let moves = inference_trace(game, trainer.policy());
    (moves, trainer.stats().clone(), !finished)
}

/// Deterministic, seeded greedy inference pass (§5.7) recovering the move
/// trace the trained policy plays. Shared between the one-shot RL search and
/// the checkpointable [`crate::SearchSession`], so an interrupted-and-resumed
/// search finishes through the identical code path.
pub(crate) fn inference_trace(game: &mut AssemblyGame, policy: &rl::ActorCritic) -> Vec<Move> {
    let mut observation = game.reset();
    let mut moves = Vec::new();
    for _ in 0..32 {
        let mask = game.action_mask();
        let Some(action) = policy.act_greedy(&observation, &mask) else {
            break;
        };
        let step = game.step(action);
        moves = game.trace().to_vec();
        observation = step.observation;
        if step.done {
            break;
        }
    }
    moves
}

fn run_greedy(
    game: &mut AssemblyGame,
    max_moves: usize,
    cancel: &CancelToken,
) -> (Vec<Move>, bool) {
    let _ = game.reset();
    let mut best_trace = Vec::new();
    for _ in 0..max_moves {
        if cancel.is_cancelled() {
            return (best_trace, true);
        }
        let mask = game.action_mask();
        // Try each legal action, keep the best improvement.
        let mut best: Option<(usize, f32)> = None;
        for (action, &legal) in mask.iter().enumerate() {
            if !legal {
                continue;
            }
            let mut probe = game.clone();
            let step = probe.step(action);
            if step.reward > best.map_or(0.0, |(_, r)| r) {
                best = Some((action, step.reward));
            }
        }
        let Some((action, _)) = best else { break };
        let step = game.step(action);
        best_trace = game.trace().to_vec();
        if step.done {
            break;
        }
    }
    (best_trace, false)
}

fn run_random(
    game: &mut AssemblyGame,
    steps: usize,
    seed: u64,
    cancel: &CancelToken,
) -> (Vec<Move>, bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let _ = game.reset();
    let mut best_trace = Vec::new();
    let mut best_runtime = game.best().1;
    for _ in 0..steps {
        if cancel.is_cancelled() {
            return (best_trace, true);
        }
        let mask = game.action_mask();
        let legal: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect();
        if legal.is_empty() {
            let _ = game.reset();
            continue;
        }
        let action = legal[rng.gen_range(0..legal.len())];
        let step = game.step(action);
        if game.best().1 < best_runtime {
            best_runtime = game.best().1;
            best_trace = game.trace().to_vec();
        }
        if step.done {
            let _ = game.reset();
        }
    }
    (best_trace, false)
}

fn run_evolutionary(
    game: &mut AssemblyGame,
    generations: usize,
    mutation_length: usize,
    seed: u64,
    cancel: &CancelToken,
) -> (Vec<Move>, bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best_sequence: Vec<usize> = Vec::new();
    let mut best_runtime = game.initial_runtime_us();
    let mut best_trace = Vec::new();
    for _ in 0..generations {
        if cancel.is_cancelled() {
            return (best_trace, true);
        }
        // Mutate: replay the best sequence, then append random legal moves.
        let _ = game.reset();
        let mut candidate = Vec::new();
        for &action in &best_sequence {
            if *game.action_mask().get(action).unwrap_or(&false) {
                let _ = game.step(action);
                candidate.push(action);
            }
        }
        for _ in 0..mutation_length {
            let mask = game.action_mask();
            let legal: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| m.then_some(i))
                .collect();
            if legal.is_empty() {
                break;
            }
            let action = legal[rng.gen_range(0..legal.len())];
            let _ = game.step(action);
            candidate.push(action);
        }
        if game.best().1 < best_runtime {
            best_runtime = game.best().1;
            best_sequence = candidate;
            best_trace = game.trace().to_vec();
        }
    }
    (best_trace, false)
}

/// Per-strategy speedups on one kernel, used by the search-strategy ablation
/// bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyComparison {
    /// Strategy label → speedup over the `-O3` baseline.
    pub speedups: HashMap<String, f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{generate, KernelConfig, KernelKind, ScheduleStyle};

    fn small_kernel() -> (String, Program, gpusim::LaunchConfig) {
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let k = generate(&spec, &config, ScheduleStyle::Baseline);
        (k.name, k.program, k.launch)
    }

    #[test]
    fn greedy_search_finds_a_verified_speedup() {
        let (name, program, launch) = small_kernel();
        let optimizer = CuAsmRl::new(GpuConfig::small(), Strategy::Greedy { max_moves: 12 });
        let report = optimizer.optimize_program(&name, program, launch);
        assert!(report.verified, "optimized schedule must verify");
        assert!(
            report.speedup >= 1.0,
            "greedy search must not regress: {}",
            report.speedup
        );
        assert!(report.speedup > 1.01, "expected a measurable speedup");
        assert!(!report.moves.is_empty());
        assert!(!report.optimized_listing.is_empty());
    }

    #[test]
    fn evolutionary_and_random_search_never_regress() {
        let (name, program, launch) = small_kernel();
        for strategy in [
            Strategy::Random { steps: 16, seed: 1 },
            Strategy::Evolutionary {
                generations: 4,
                mutation_length: 4,
                seed: 1,
            },
        ] {
            let optimizer = CuAsmRl::new(GpuConfig::small(), strategy);
            let report = optimizer.optimize_program(&name, program.clone(), launch.clone());
            assert!(report.speedup >= 1.0);
            assert!(report.verified);
        }
    }

    #[test]
    fn cache_round_trips_reports() {
        let dir = std::env::temp_dir().join(format!("cuasmrl-cache-test-{}", std::process::id()));
        let (name, program, launch) = small_kernel();
        let optimizer = CuAsmRl::new(GpuConfig::small(), Strategy::Greedy { max_moves: 4 })
            .with_cache_dir(&dir);
        assert!(optimizer.lookup(&name).is_none());
        let report = optimizer.optimize_program(&name, program, launch);
        optimizer.store(&report);
        let hit = optimizer.lookup(&name).expect("cache hit after store");
        assert_eq!(hit.kernel, report.kernel);
        let _ = std::fs::remove_dir_all(dir);
    }
}
