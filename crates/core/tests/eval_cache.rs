//! Integration tests of the schedule-evaluation cache: cached results must
//! be bit-identical to uncached simulation, keys must separate every
//! component of the evaluation context, and random masked move sequences
//! must observe identical rewards with or without cache sharing.

use std::sync::Arc;

use cuasmrl::{eval_key, AssemblyGame, EvalCache, GameConfig, StallTable};
use gpusim::{measure, GpuConfig, LaunchConfig, MeasureOptions};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rl::Env;

fn fast_measure(seed: u64) -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed,
    }
}

fn small_kernel() -> kernels::GeneratedKernel {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    generate(&spec, &config, ScheduleStyle::Baseline)
}

fn game_with(seed: u64, cache: Arc<EvalCache>) -> AssemblyGame {
    let kernel = small_kernel();
    AssemblyGame::with_eval_cache(
        GpuConfig::small(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        GameConfig {
            episode_length: 8,
            measure: fast_measure(seed),
            ..GameConfig::default()
        },
        cache,
    )
}

#[test]
fn cached_kernel_run_is_bit_identical_to_uncached_across_seeds() {
    let kernel = small_kernel();
    let gpu = GpuConfig::small();
    for seed in [0u64, 1, 7, 42] {
        let options = MeasureOptions {
            noise_std: 0.002, // exercise the noisy path too
            ..fast_measure(seed)
        };
        let cache = EvalCache::new();
        let key = eval_key(&kernel.program, &kernel.launch, &gpu, &options);
        let cached = cache.get_or_insert_with(key, || {
            measure(&gpu, &kernel.program, &kernel.launch, &options)
        });
        let replayed = cache.get_or_insert_with(key, || unreachable!("must hit"));
        let uncached = measure(&gpu, &kernel.program, &kernel.launch, &options);
        // Serialized form captures every field (including the f64 runtimes
        // and the whole KernelRun) with shortest-round-trip formatting, so
        // equality here is bit-equality.
        let a = serde_json::to_string(&cached).unwrap();
        assert_eq!(a, serde_json::to_string(&replayed).unwrap(), "seed {seed}");
        assert_eq!(a, serde_json::to_string(&uncached).unwrap(), "seed {seed}");
    }
}

#[test]
fn cache_keys_separate_every_context_component() {
    let kernel = small_kernel();
    let gpu = GpuConfig::small();
    let options = fast_measure(0);
    let base = eval_key(&kernel.program, &kernel.launch, &gpu, &options);

    let mut swapped = kernel.program.clone();
    let movable = cuasmrl::analyze(&swapped, &StallTable::builtin_a100()).movable_memory_indices();
    let idx = movable[0];
    swapped.swap_instructions(idx - 1, idx).unwrap();
    assert_ne!(
        base,
        eval_key(&swapped, &kernel.launch, &gpu, &options),
        "program digest must key the cache"
    );
    assert_ne!(
        base,
        eval_key(
            &kernel.program,
            &LaunchConfig {
                warps_per_block: kernel.launch.warps_per_block + 1,
                ..kernel.launch.clone()
            },
            &gpu,
            &options
        ),
        "launch must key the cache"
    );
    assert_ne!(
        base,
        eval_key(
            &kernel.program,
            &kernel.launch,
            &GpuConfig::a100(),
            &options
        ),
        "gpu config must key the cache"
    );
    assert_ne!(
        base,
        eval_key(&kernel.program, &kernel.launch, &gpu, &fast_measure(9)),
        "measure seed must key the cache"
    );
}

#[test]
fn identical_listings_never_share_entries_across_arch_profiles() {
    // Regression test for the multi-architecture refactor: the same
    // schedule listing evaluated under two architecture backends (on an
    // otherwise identical chip, same name included) must occupy distinct
    // cache entries — schedules must never cross-contaminate between archs.
    let kernel = small_kernel();
    let options = fast_measure(0);
    let ampere = GpuConfig::small();
    let mut turing = GpuConfig::small_with_arch(gpusim::ArchSpec::turing());
    turing.name = ampere.name.clone();
    let key_ampere = eval_key(&kernel.program, &kernel.launch, &ampere, &options);
    let key_turing = eval_key(&kernel.program, &kernel.launch, &turing, &options);
    assert_ne!(
        cuasmrl::arch_key(&ampere.arch),
        cuasmrl::arch_key(&turing.arch)
    );
    assert_ne!(key_ampere, key_turing, "arch profile must key the cache");

    let cache = EvalCache::new();
    let a = cache.get_or_insert_with(key_ampere, || {
        measure(&ampere, &kernel.program, &kernel.launch, &options)
    });
    let t = cache.get_or_insert_with(key_turing, || {
        measure(&turing, &kernel.program, &kernel.launch, &options)
    });
    assert_eq!(cache.len(), 2, "one entry per architecture profile");
    assert_ne!(a.run.sm.cycles, t.run.sm.cycles);
    // Each arch's subsequent lookups hit its own entry bit for bit.
    let a2 = cache.get_or_insert_with(key_ampere, || unreachable!("must hit"));
    assert_eq!(a, a2);
}

#[test]
fn episode_replays_hit_the_shared_cache() {
    let cache = Arc::new(EvalCache::new());
    let mut game = game_with(0, cache.clone());
    let play = |game: &mut AssemblyGame| -> Vec<u32> {
        let _ = game.reset();
        let mut rewards = Vec::new();
        for _ in 0..6 {
            let mask = game.action_mask();
            let Some(action) = mask.iter().position(|&m| m) else {
                break;
            };
            let step = game.step(action);
            rewards.push(step.reward.to_bits());
            if step.done {
                break;
            }
        }
        rewards
    };
    let first = play(&mut game);
    let misses_after_first = cache.stats().misses;
    let second = play(&mut game);
    assert_eq!(first, second, "replayed episode must observe equal rewards");
    assert_eq!(
        cache.stats().misses,
        misses_after_first,
        "a replayed episode must be answered entirely from the cache"
    );
    assert!(cache.stats().hits > 0);

    // A clone of the game (as handed to greedy probes and VecEnv workers)
    // shares the same cache.
    let clone = game.clone();
    assert!(Arc::ptr_eq(clone.eval_cache(), game.eval_cache()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Random masked move sequences observe bit-identical rewards whether
    /// the games share one evaluation cache, use private caches, or replay
    /// over a pre-warmed cache.
    #[test]
    fn random_move_sequences_are_cache_transparent(seed in 0u64..1000) {
        let shared = Arc::new(EvalCache::new());
        let mut warm = game_with(3, shared.clone());
        let mut replay = game_with(3, shared.clone());
        let mut cold = game_with(3, Arc::new(EvalCache::new()));

        let play = |game: &mut AssemblyGame, seed: u64| -> (Vec<u32>, u64) {
            let _ = game.reset();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut rewards = Vec::new();
            for _ in 0..8 {
                let mask = game.action_mask();
                let legal: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &m)| m.then_some(i))
                    .collect();
                if legal.is_empty() {
                    break;
                }
                let action = legal[rng.gen_range(0..legal.len())];
                let step = game.step(action);
                rewards.push(step.reward.to_bits());
                if step.done {
                    break;
                }
            }
            (rewards, game.best().1.to_bits())
        };

        let first = play(&mut warm, seed);
        let hot = play(&mut replay, seed); // same sequence, warmed cache
        let isolated = play(&mut cold, seed); // same sequence, private cache
        prop_assert_eq!(&first, &hot, "warm replay must match");
        prop_assert_eq!(&first, &isolated, "cache sharing must be invisible");
    }
}
