//! Property-based test of the central safety invariant: any action admitted
//! by the mask keeps the simulated execution hazard-free and preserves the
//! kernel's outputs.

use cuasmrl::{action_mask, analyze, Action, Direction, StallTable};
use gpusim::{simulate_launch, GpuConfig};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Random walks through the masked action space never corrupt the kernel.
    #[test]
    fn masked_random_walks_preserve_correctness(seed in 0u64..1000) {
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        let gpu = GpuConfig::small();
        let table = StallTable::builtin_a100();
        let baseline = simulate_launch(&gpu, &kernel.program, &kernel.launch);
        let mut program = kernel.program.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..6 {
            let analysis = analyze(&program, &table);
            let movable = analysis.movable_memory_indices();
            let mask = action_mask(&program, &movable, &analysis, &table);
            let legal: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| m.then_some(i))
                .collect();
            if legal.is_empty() {
                break;
            }
            let action = Action::from_id(legal[rng.gen_range(0..legal.len())]);
            let index = movable[action.slot];
            let (a, b) = match action.direction {
                Direction::Up => (index - 1, index),
                Direction::Down => (index, index + 1),
            };
            program.swap_instructions(a, b).unwrap();
        }
        let run = simulate_launch(&gpu, &program, &kernel.launch);
        prop_assert_eq!(run.sm.hazards, 0);
        prop_assert_eq!(run.sm.output_digest, baseline.sm.output_digest);
    }
}
