//! Property-based test of the central safety invariant: any action admitted
//! by the mask keeps the simulated execution hazard-free and preserves the
//! kernel's outputs.

use cuasmrl::{action_mask, analyze, Action, Direction, StallTable};
use gpusim::{simulate_launch, GpuConfig};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Random walks through the masked action space never corrupt the kernel.
    #[test]
    fn masked_random_walks_preserve_correctness(seed in 0u64..1000) {
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        let gpu = GpuConfig::small();
        let table = StallTable::builtin_a100();
        let baseline = simulate_launch(&gpu, &kernel.program, &kernel.launch);
        let mut program = kernel.program.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..6 {
            let analysis = analyze(&program, &table);
            let movable = analysis.movable_memory_indices();
            let mask = action_mask(&program, &movable, &analysis, &table);
            let legal: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| m.then_some(i))
                .collect();
            if legal.is_empty() {
                break;
            }
            let action = Action::from_id(legal[rng.gen_range(0..legal.len())]);
            let index = movable[action.slot];
            let (a, b) = match action.direction {
                Direction::Up => (index - 1, index),
                Direction::Down => (index, index + 1),
            };
            program.swap_instructions(a, b).unwrap();
        }
        let run = simulate_launch(&gpu, &program, &kernel.launch);
        prop_assert_eq!(run.sm.hazards, 0);
        prop_assert_eq!(run.sm.output_digest, baseline.sm.output_digest);
    }

    /// Along any masked-legal random walk, updating a retained
    /// [`cuasmrl::IncrementalMasker`] swap by swap and re-evaluating only
    /// the affected basic block yields exactly the mask a from-scratch
    /// recomputation produces — the equivalence the game's incremental
    /// refresh path rests on.
    #[test]
    fn incremental_mask_updates_equal_full_recomputation(seed in 0u64..1000) {
        use cuasmrl::IncrementalMasker;
        let spec = KernelSpec::scaled(KernelKind::FusedFeedForward, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        let table = StallTable::builtin_a100();
        let mut program = kernel.program.clone();
        let mut analysis = analyze(&program, &table);
        let mut movable = analysis.movable_memory_indices();
        let mut masker = IncrementalMasker::new(&program, &analysis, &table);
        let mut mask = masker.full_mask(&movable, &analysis);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..8 {
            let legal: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| m.then_some(i))
                .collect();
            if legal.is_empty() {
                break;
            }
            let action = Action::from_id(legal[rng.gen_range(0..legal.len())]);
            let index = movable[action.slot];
            let upper = match action.direction {
                Direction::Up => index - 1,
                Direction::Down => index,
            };
            program.swap_instructions(upper, upper + 1).unwrap();
            let next_analysis = analyze(&program, &table);
            let next_movable = next_analysis.movable_memory_indices();
            prop_assert!(
                masker.swap_stays_incremental(upper),
                "legal swaps stay within one fence-free block"
            );
            // The incremental path is only claimed valid under the same
            // guards the game checks: unchanged (inferred) stall table and
            // an index-relabelled denylist. When a swap moves either, the
            // game rebuilds — mirror that here.
            let remap = |i: usize| {
                if i == upper {
                    upper + 1
                } else if i == upper + 1 {
                    upper
                } else {
                    i
                }
            };
            let guards_hold = next_analysis.stalls == analysis.stalls
                && next_analysis.denylist.len() == analysis.denylist.len()
                && next_analysis
                    .denylist
                    .iter()
                    .all(|&i| analysis.denylist.contains(&remap(i)));
            let full = action_mask(&program, &next_movable, &next_analysis, &table);
            if guards_hold {
                masker.apply_swap(upper);
                let incremental =
                    masker.mask_after_swap(upper, &next_movable, &next_analysis, &movable, &mask);
                prop_assert_eq!(&incremental, &full, "swap at {}", upper);
            } else {
                masker = IncrementalMasker::new(&program, &next_analysis, &table);
            }
            analysis = next_analysis;
            movable = next_movable;
            mask = full;
        }
        let _ = analysis;
    }

    /// The rich-space analogue: along random walks over the *full* edit set
    /// (swaps, block moves, reuse toggles, stall retunes, barrier edits),
    /// updating a retained masker with [`cuasmrl::IncrementalMasker::apply_edit`]
    /// and re-resolving only the affected block yields exactly the edit
    /// table a from-scratch [`cuasmrl::schedule_edits`] produces — closing
    /// the masking gap for every non-swap edit kind.
    #[test]
    fn incremental_edit_updates_equal_full_recomputation(seed in 0u64..1000) {
        use cuasmrl::{schedule_edits, ActionSpace, IncrementalMasker};
        let spec = KernelSpec::scaled(KernelKind::FusedFeedForward, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        let table = StallTable::builtin_a100();
        let space = ActionSpace::Rich;
        let mut program = kernel.program.clone();
        let mut analysis = analyze(&program, &table);
        let mut movable = analysis.movable_memory_indices();
        let mut masker = IncrementalMasker::new(&program, &analysis, &table);
        let mut edits = masker.full_edits(&movable, &analysis, space);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..8 {
            let legal: Vec<cuasmrl::ScheduleEdit> =
                edits.iter().copied().flatten().collect();
            if legal.is_empty() {
                break;
            }
            let edit = legal[rng.gen_range(0..legal.len())];
            prop_assert!(edit.apply(&mut program), "{:?}", edit);
            let next_analysis = analyze(&program, &table);
            let next_movable = next_analysis.movable_memory_indices();
            prop_assert!(
                masker.edit_stays_incremental(&edit),
                "legal edits stay within one fence-free block: {:?}",
                edit
            );
            // Same guards the game's refresh path checks before going
            // incremental: unchanged inferred stalls and an
            // index-relabelled denylist.
            let guards_hold = next_analysis.stalls == analysis.stalls
                && next_analysis.denylist.len() == analysis.denylist.len()
                && next_analysis
                    .denylist
                    .iter()
                    .all(|&i| analysis.denylist.contains(&edit.old_position_of(i)));
            let full = schedule_edits(&program, &next_movable, &next_analysis, &table, space);
            if guards_hold {
                masker.apply_edit(&edit);
                let incremental = masker.edits_after_edit(
                    &edit,
                    &next_movable,
                    &next_analysis,
                    space,
                    &movable,
                    &edits,
                );
                prop_assert_eq!(&incremental, &full, "after {:?}", edit);
            } else {
                masker = IncrementalMasker::new(&program, &next_analysis, &table);
            }
            analysis = next_analysis;
            movable = next_movable;
            edits = full;
        }
        let _ = analysis;
    }
}
