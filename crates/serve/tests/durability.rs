//! The durability crash-point sweep: kill the store at EVERY I/O boundary
//! of a full write/evict/remove/compact cycle, under every crash effect
//! (before / torn / after), and prove that recovery — plain reopen or
//! `cuasmrld-fsck --repair` — always lands every key on a state the store
//! legitimately passed through: absent, the first written value, or the
//! second. Never a third state.
//!
//! The op list is not hard-coded: a recording run enumerates the cycle's
//! actual I/O sequence ([`CrashPointIo::recording`]), so the sweep stays
//! exhaustive when the store's I/O pattern changes.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cuasmrld::{
    decode_entry_bytes, fsck, is_simulated_crash, CanonicalRequest, CrashEffect, CrashPoint,
    CrashPointIo, OptimizeRequest, RequestDefaults, RequestKey, ScheduleStore, StoreEntry,
    StoreError, StoreIo, STORE_SCHEMA_VERSION,
};

fn key_for(kernel: &str, seed: u64) -> RequestKey {
    let mut request = OptimizeRequest::table2(kernel, "ampere");
    request.seed = Some(seed);
    let canonical: CanonicalRequest = request
        .canonicalize(&RequestDefaults { scale: 16, seed: 0 })
        .unwrap();
    RequestKey::of(&canonical)
}

/// A deterministic sealed entry; `seed` also varies the content so the two
/// values a key passes through have distinct checksums.
fn entry_for(key: &RequestKey, seed: u64) -> StoreEntry {
    StoreEntry {
        schema_version: STORE_SCHEMA_VERSION,
        canonical: key.canonical.clone(),
        arch: key.arch.clone(),
        kernel: key.kernel.clone(),
        seed,
        generation: 0,
        checksum: String::new(),
        report: cuasmrl::OptimizationReport {
            kernel: key.kernel.clone(),
            baseline_us: 10.0,
            optimized_us: 8.0,
            speedup: 1.25,
            verified: true,
            optimized_listing: format!("; schedule for seed {seed}"),
            moves: Vec::new(),
        },
    }
    .seal()
}

fn temp_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cuasmrld-durability-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

struct Cycle {
    a: RequestKey,
    b: RequestKey,
    c: RequestKey,
    /// The two values key B passes through (put, remove, re-put).
    b_first: StoreEntry,
    b_second: StoreEntry,
    a_value: StoreEntry,
    c_value: StoreEntry,
}

impl Cycle {
    fn new() -> Cycle {
        let a = key_for("softmax", 1);
        let b = key_for("bmm", 2);
        let c = key_for("rmsnorm", 3);
        Cycle {
            b_first: entry_for(&b, 2),
            b_second: entry_for(&b, 22),
            a_value: entry_for(&a, 1),
            c_value: entry_for(&c, 3),
            a,
            b,
            c,
        }
    }

    /// One full store lifetime: open (capacity 2, so the third put evicts
    /// from memory), three puts, a disk-path get, a journaled remove, a
    /// re-put of the removed key, and an explicit compaction.
    fn run(&self, dir: &Path, io: Arc<dyn StoreIo>) -> Result<(), StoreError> {
        let store = ScheduleStore::open_with_io(dir, 2, io)?;
        store.put(&self.a, self.a_value.clone())?;
        store.put(&self.b, self.b_first.clone())?;
        store.put(&self.c, self.c_value.clone())?;
        // A was evicted from memory by the third put: this get takes the
        // disk read path, adding a read boundary to the sweep.
        let read_back = store.get(&self.a)?;
        assert!(read_back.is_some(), "a published entry reads back");
        store.remove(&self.b)?;
        store.put(&self.b, self.b_second.clone())?;
        store.compact()
    }

    /// Asserts every key sits on a state the cycle legitimately passed
    /// through: absent, or a decodable entry whose content checksum is one
    /// of the values written for that key.
    fn assert_no_third_state(&self, dir: &Path, label: &str) {
        let legal: [(&RequestKey, Vec<&str>); 3] = [
            (&self.a, vec![self.a_value.checksum.as_str()]),
            (
                &self.b,
                vec![
                    self.b_first.checksum.as_str(),
                    self.b_second.checksum.as_str(),
                ],
            ),
            (&self.c, vec![self.c_value.checksum.as_str()]),
        ];
        for (key, checksums) in legal {
            let path = dir.join(format!("{}.json", key.file_stem()));
            let bytes = match std::fs::read(&path) {
                // Absent is the pre-write state: legal.
                Err(err) if err.kind() == io::ErrorKind::NotFound => continue,
                Err(err) => panic!("{label}: {} unreadable: {err}", path.display()),
                Ok(bytes) => bytes,
            };
            let entry = decode_entry_bytes(&path, &bytes).unwrap_or_else(|err| {
                panic!(
                    "{label}: {} does not decode after recovery: {err}",
                    path.display()
                )
            });
            assert!(
                checksums.contains(&entry.checksum.as_str()),
                "{label}: {} holds a third state (checksum {}, legal {:?})",
                path.display(),
                entry.checksum,
                checksums
            );
        }
    }
}

/// Recovery path (a): just reopen the store — open is recovery (sweep,
/// replay, rotate).
fn recover_by_reopen(cycle: &Cycle, dir: &Path, label: &str) {
    let store = ScheduleStore::open(dir, 2)
        .unwrap_or_else(|err| panic!("{label}: reopen after crash failed: {err}"));
    cycle.assert_no_third_state(dir, label);
    // The reopened store serves every surviving key.
    for key in [&cycle.a, &cycle.b, &cycle.c] {
        if dir.join(format!("{}.json", key.file_stem())).exists() {
            let entry = store
                .get(key)
                .unwrap_or_else(|err| panic!("{label}: get after recovery failed: {err}"));
            assert!(entry.is_some(), "{label}: present entry must serve");
        }
    }
}

/// Recovery path (b): offline `cuasmrld-fsck --repair`, then reopen.
fn recover_by_fsck(cycle: &Cycle, dir: &Path, label: &str) {
    let report = fsck(dir, true).unwrap_or_else(|err| panic!("{label}: fsck failed: {err}"));
    assert_eq!(
        report.unrepairable, 0,
        "{label}: fsck left unrepairable damage: {report:?}"
    );
    cycle.assert_no_third_state(dir, label);
    let store = ScheduleStore::open(dir, 2)
        .unwrap_or_else(|err| panic!("{label}: reopen after fsck failed: {err}"));
    drop(store);
    cycle.assert_no_third_state(dir, label);
}

#[test]
fn the_sweep_covers_every_io_boundary_and_recovery_never_invents_state() {
    // 1. Enumerate the cycle's I/O sequence with a recording run.
    let cycle = Cycle::new();
    let record_dir = temp_dir("record");
    let _ = std::fs::remove_dir_all(&record_dir);
    let recorder = Arc::new(CrashPointIo::recording());
    cycle
        .run(&record_dir, Arc::clone(&recorder) as Arc<dyn StoreIo>)
        .expect("the clean cycle completes");
    let ops = recorder.ops();
    let _ = std::fs::remove_dir_all(&record_dir);
    assert!(
        ops.len() >= 12,
        "the cycle must exercise a real I/O sequence, got {ops:?}"
    );
    // Every mutation kind the StoreIo trait defines shows up — the sweep
    // genuinely enumerates the whole surface.
    for kind in ["read", "write", "append", "rename", "remove"] {
        assert!(
            ops.iter().any(|op| op.kind == kind),
            "cycle never performed a {kind}; ops: {ops:?}"
        );
    }

    // 2. The sweep proper: for every ordinal x every crash effect, run the
    // cycle to its deterministic death, then recover — alternating between
    // the two recovery paths so both are exercised across the whole op
    // range — and assert the pre-or-post-write guarantee.
    let effects = [CrashEffect::Before, CrashEffect::Torn, CrashEffect::After];
    let mut scenarios = 0usize;
    for ordinal in 0..ops.len() as u64 {
        for (which, effect) in effects.into_iter().enumerate() {
            let label = format!(
                "ordinal {ordinal} ({}) {effect}",
                ops[ordinal as usize].kind
            );
            let dir = temp_dir(&format!("sweep-{ordinal}-{which}"));
            let _ = std::fs::remove_dir_all(&dir);
            let io = Arc::new(CrashPointIo::crash_at(CrashPoint { ordinal, effect }));
            let result = cycle.run(&dir, Arc::clone(&io) as Arc<dyn StoreIo>);
            let err = result.expect_err(&format!("{label}: the crash point must fire"));
            match err {
                StoreError::Io(err) => {
                    assert!(is_simulated_crash(&err), "{label}: unexpected error {err}")
                }
                other => panic!("{label}: unexpected error {other}"),
            }
            assert!(io.crashed(), "{label}: the crash point must fire");
            // Alternate the recovery path; both sides of the alternation
            // cover every ordinal because the three effects split between
            // them at every position.
            if (ordinal as usize + which).is_multiple_of(2) {
                recover_by_reopen(&cycle, &dir, &label);
            } else {
                recover_by_fsck(&cycle, &dir, &label);
            }
            let _ = std::fs::remove_dir_all(&dir);
            scenarios += 1;
        }
    }
    assert_eq!(scenarios, ops.len() * 3);
}

#[test]
fn a_completed_cycle_recovers_to_its_full_post_state() {
    // The degenerate sweep point: a crash point beyond the op list never
    // fires, so recovery sees the complete post-state — every key present
    // with its final value.
    let cycle = Cycle::new();
    let dir = temp_dir("post");
    let _ = std::fs::remove_dir_all(&dir);
    cycle.run(&dir, Arc::new(cuasmrld::RealIo)).unwrap();
    let store = ScheduleStore::open(&dir, 2).unwrap();
    let a = store.get(&cycle.a).unwrap().expect("a survives");
    assert_eq!(a.checksum, cycle.a_value.checksum);
    let b = store.get(&cycle.b).unwrap().expect("b survives");
    assert_eq!(
        b.checksum, cycle.b_second.checksum,
        "b holds its re-put value"
    );
    let c = store.get(&cycle.c).unwrap().expect("c survives");
    assert_eq!(c.checksum, cycle.c_value.checksum);
    drop(store);
    // And fsck agrees the recovered directory is healthy.
    let report = fsck(&dir, false).unwrap();
    assert!(report.healthy(), "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
