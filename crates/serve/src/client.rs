//! A minimal blocking client for the `cuasmrld` wire protocol: one
//! connection, one request frame, one response frame.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, OptimizeRequest, OptimizeResponse};

/// A client bound to one daemon address. Connections are per-request (the
/// protocol is one exchange per connection), so a `Client` is cheap to
/// clone and share across threads.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr` with a 60-second per-request
    /// timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends raw payload bytes as one frame and returns the raw response
    /// frame. This is the byte-level surface: the determinism tests compare
    /// these bytes directly, and the rejection tests push malformed
    /// payloads through it.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the connection, write or read fails.
    pub fn request_raw(&self, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_frame(&mut stream, payload)?;
        read_frame(&mut stream)
    }

    /// Sends a request and returns the raw response frame (already-typed
    /// requests, byte-level responses — what the repeat-traffic
    /// byte-identity proof uses).
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails or the request cannot
    /// be encoded.
    pub fn request_bytes(&self, request: &OptimizeRequest) -> io::Result<Vec<u8>> {
        let payload = serde_json::to_string(request)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        self.request_raw(payload.as_bytes())
    }

    /// Sends a request and decodes the typed response.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails or the response frame
    /// is not valid response JSON.
    pub fn request(&self, request: &OptimizeRequest) -> io::Result<OptimizeResponse> {
        let raw = self.request_bytes(request)?;
        let text = String::from_utf8(raw)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        serde_json::from_str(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }
}
