//! The `cuasmrld` client API, redesigned around protocol v2's persistent
//! pipelined connections.
//!
//! The primary surface is [`ClientBuilder`] → [`Connection`] →
//! [`Connection::submit`] → [`RequestHandle::wait`]: one TCP connection
//! carries any number of exchanges, multiple requests may be in flight at
//! once, and a background reader demultiplexes the tagged responses back
//! to their handles — so a slow request never blocks a fast one, and
//! submission order never constrains completion order.
//!
//! The old one-shot surface survives as the [`Client`] facade:
//! [`Client::request`] and [`Client::status`] open a short-lived
//! connection per call (now a v2 session under the hood), while
//! [`Client::request_raw`]/[`Client::request_bytes`] still speak the bare
//! v1 single-exchange framing — the byte-level surface the determinism and
//! compatibility tests poke directly. [`Client::request_with_retry`]
//! layers bounded, deterministic backoff over transient failures (`Busy`,
//! `Internal`, connection errors) exactly as before — the retry schedule
//! is a pure function of the [`RetryPolicy`], so chaos tests can assert
//! exactly how a healed request behaves.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::protocol::{
    poll_frame, read_frame, write_frame, FrameRead, OptimizeRequest, OptimizeResponse, RequestBody,
    StatusRequest, StatusResult, TaggedRequest, TaggedResponse,
};
use crate::ErrorCode;

/// How often the connection's reader thread wakes from an idle socket to
/// check whether the connection is being torn down.
const READER_IDLE_POLL: Duration = Duration::from_millis(50);

/// Why a one-shot exchange failed, split by what the failure implies about
/// the request's fate — the distinction a caller needs before retrying
/// against a service with side effects.
///
/// A connection reset is ambiguous: did the daemon never see the request,
/// or did it accept it and die (or drop the connection) before answering?
/// [`ConnectionFailure::NeverAdmitted`] is the provably-safe case — the
/// failure happened before any byte could reach the daemon's admission
/// path, so retrying cannot double-submit. [`ConnectionFailure::FateUnknown`]
/// means the request may have been admitted and even completed; whether a
/// retry is safe then depends on the request being idempotent (for this
/// protocol it is — see [`Client::request_with_retry`]).
#[derive(Debug)]
pub enum ConnectionFailure {
    /// The failure happened before the request could reach the daemon:
    /// connect failed, or the request could not even be encoded. Nothing
    /// was admitted; retrying is unconditionally safe.
    NeverAdmitted(io::Error),
    /// The request (or a prefix of it) reached the wire, and the failure —
    /// a write error, a reset mid-wait, a timeout — leaves its fate
    /// unknown: the daemon may have processed it fully. Only retry when
    /// the request is idempotent.
    FateUnknown(io::Error),
}

impl ConnectionFailure {
    /// Whether this is the provably-safe-to-retry case.
    #[must_use]
    pub fn never_admitted(&self) -> bool {
        matches!(self, ConnectionFailure::NeverAdmitted(_))
    }

    /// The underlying transport error.
    #[must_use]
    pub fn io(&self) -> &io::Error {
        match self {
            ConnectionFailure::NeverAdmitted(err) | ConnectionFailure::FateUnknown(err) => err,
        }
    }

    /// Unwraps into the underlying transport error (for callers keeping
    /// the plain `io::Result` surface).
    #[must_use]
    pub fn into_io(self) -> io::Error {
        match self {
            ConnectionFailure::NeverAdmitted(err) | ConnectionFailure::FateUnknown(err) => err,
        }
    }
}

impl std::fmt::Display for ConnectionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectionFailure::NeverAdmitted(err) => {
                write!(f, "request never admitted: {err}")
            }
            ConnectionFailure::FateUnknown(err) => {
                write!(f, "request fate unknown after transport failure: {err}")
            }
        }
    }
}

impl std::error::Error for ConnectionFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.io())
    }
}

/// A deterministic bounded-backoff retry schedule: attempt `n` (0-based)
/// sleeps `min(base_delay << n, max_delay)` before retrying. No jitter —
/// determinism is the point; the daemon's admission queue, not randomness,
/// spreads load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Four attempts backing off 20 ms → 40 ms → 80 ms (capped at 500 ms) —
    /// enough to ride out a worker respawn or a queue-full burst without
    /// stretching test wall-clock.
    #[must_use]
    pub fn quick() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
        }
    }

    /// The backoff slept after a failed attempt `n` (0-based):
    /// `min(base_delay * 2^n, max_delay)`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |delay| delay.min(self.max_delay))
    }
}

/// Configures and opens a [`Connection`] to a daemon.
#[derive(Debug, Clone, Copy)]
pub struct ClientBuilder {
    addr: SocketAddr,
    timeout: Duration,
}

impl ClientBuilder {
    /// A builder for the daemon at `addr` with a 60-second default
    /// connect/write/wait timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> ClientBuilder {
        ClientBuilder {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides the connect/write timeout and the default
    /// [`RequestHandle::wait`] timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.timeout = timeout;
        self
    }

    /// Opens a persistent v2 session and spawns its response reader.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the TCP connection cannot be established.
    pub fn connect(&self) -> io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_write_timeout(Some(self.timeout))?;
        let reader_stream = stream.try_clone()?;
        let inner = Arc::new(ConnInner {
            writer: Mutex::new(stream.try_clone()?),
            pending: Mutex::new(HashMap::new()),
            closing: AtomicBool::new(false),
        });
        let reader = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || reader_loop(reader_stream, &inner))
        };
        Ok(Connection {
            inner,
            stream,
            reader: Some(reader),
            next_id: AtomicU64::new(1),
            addr: self.addr,
            timeout: self.timeout,
        })
    }
}

/// Shared state between a [`Connection`] and its reader thread.
struct ConnInner {
    writer: Mutex<TcpStream>,
    /// In-flight requests by `request_id`; the reader moves each tagged
    /// response to its channel and drops the entry. Dropped senders (on
    /// teardown) surface as `ConnectionAborted` at the handle.
    pending: Mutex<HashMap<u64, mpsc::Sender<OptimizeResponse>>>,
    /// Set by [`Connection`]'s drop so the reader exits its idle poll.
    closing: AtomicBool,
}

impl ConnInner {
    fn lock_pending(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<u64, mpsc::Sender<OptimizeResponse>>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The reader half of a session: demultiplex tagged response frames to
/// their waiting handles until the server closes, framing breaks, or the
/// connection is dropped. On exit every still-pending sender is dropped,
/// which wakes every waiting [`RequestHandle`] with `ConnectionAborted`.
fn reader_loop(mut stream: TcpStream, inner: &ConnInner) {
    loop {
        if inner.closing.load(Ordering::SeqCst) {
            break;
        }
        match poll_frame(&mut stream, READER_IDLE_POLL, Duration::from_secs(10)) {
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Closed) | Err(_) => break,
            Ok(FrameRead::Frame(payload)) => {
                let Ok(tagged) = std::str::from_utf8(&payload)
                    .map_err(|_| ())
                    .and_then(|text| serde_json::from_str::<TaggedResponse>(text).map_err(|_| ()))
                else {
                    // An unparsable response frame is a protocol violation
                    // by the server; the session is unusable.
                    break;
                };
                if let Some(sender) = inner.lock_pending().remove(&tagged.request_id) {
                    let _ = sender.send(tagged.response);
                }
                // A response for an id nobody waits on (e.g. an
                // unattributed server error the caller didn't register
                // interest in) is dropped — ids are the only routing.
            }
        }
    }
    inner.lock_pending().clear();
}

/// A persistent, pipelined connection to a daemon (protocol v2). Submit
/// any number of requests without waiting; each returns a
/// [`RequestHandle`] that resolves independently, in whatever order the
/// server answers. All methods take `&self`, so one `Connection` can be
/// shared across threads.
///
/// Dropping the connection closes the socket and joins the reader;
/// handles still waiting resolve with `ConnectionAborted`.
pub struct Connection {
    inner: Arc<ConnInner>,
    stream: TcpStream,
    reader: Option<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
    addr: SocketAddr,
    timeout: Duration,
}

impl Connection {
    /// The daemon address this connection talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers interest in `request_id` without sending anything: the
    /// handle resolves when (if) the server sends a response tagged with
    /// that id. This is how a caller of [`Connection::send_raw`] observes
    /// the server's reaction — including errors tagged
    /// [`crate::protocol::UNATTRIBUTED_REQUEST_ID`] (0) for frames whose
    /// id could not be salvaged.
    #[must_use]
    pub fn expect(&self, request_id: u64) -> RequestHandle {
        let (sender, receiver) = mpsc::channel();
        self.inner.lock_pending().insert(request_id, sender);
        RequestHandle {
            request_id,
            receiver,
            timeout: self.timeout,
        }
    }

    /// Writes one raw frame on the session — the byte-level surface the
    /// malformed-frame tests push damaged payloads through. Pair with
    /// [`Connection::expect`] to observe the response.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the write fails.
    pub fn send_raw(&self, payload: &[u8]) -> io::Result<()> {
        let mut writer = self
            .inner
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        write_frame(&mut *writer, payload)
    }

    fn submit_body(&self, body: RequestBody) -> io::Result<RequestHandle> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let handle = self.expect(request_id);
        let tagged = TaggedRequest { request_id, body };
        let payload = serde_json::to_string(&tagged)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        if let Err(err) = self.send_raw(payload.as_bytes()) {
            // Nothing reached the wire; nothing will answer this id.
            self.inner.lock_pending().remove(&request_id);
            return Err(err);
        }
        Ok(handle)
    }

    /// Submits a request without waiting. Ids are assigned sequentially
    /// starting at 1 (0 is reserved for unattributable server errors).
    ///
    /// # Errors
    ///
    /// Returns an IO error when the request cannot be encoded or written;
    /// server-side rejections arrive as typed responses on the handle.
    pub fn submit(&self, request: &OptimizeRequest) -> io::Result<RequestHandle> {
        self.submit_body(RequestBody::Optimize(request.clone()))
    }

    /// Submits a status probe without waiting.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the probe cannot be written.
    pub fn submit_status(&self) -> io::Result<RequestHandle> {
        self.submit_body(RequestBody::Status(StatusRequest::new()))
    }

    /// Submits a request and waits for its answer — the one-shot
    /// convenience over [`Connection::submit`].
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails at the transport level
    /// or times out.
    pub fn request(&self, request: &OptimizeRequest) -> io::Result<OptimizeResponse> {
        self.submit(request)?.wait()
    }

    /// Asks the daemon for its live counters over this session.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails or the daemon answers
    /// with a typed error.
    pub fn status(&self) -> io::Result<StatusResult> {
        match self.submit_status()?.wait()? {
            OptimizeResponse::Status(status) => Ok(status),
            OptimizeResponse::Ok(_) => Err(io::Error::other(
                "daemon answered a status probe with an optimize result".to_string(),
            )),
            OptimizeResponse::Err(error) => Err(io::Error::other(error.to_string())),
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        // Wake the reader out of a blocking read; ignore failure (the
        // socket may already be gone, which wakes the reader just as well).
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// One in-flight request on a [`Connection`]. Resolves independently of
/// every other handle — waiting on a later submission first is fine.
pub struct RequestHandle {
    request_id: u64,
    receiver: mpsc::Receiver<OptimizeResponse>,
    timeout: Duration,
}

impl RequestHandle {
    /// The `request_id` this handle is waiting on.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.request_id
    }

    /// Waits for the response under the connection's default timeout.
    ///
    /// # Errors
    ///
    /// `TimedOut` when no response arrived in time, `ConnectionAborted`
    /// when the connection closed first.
    pub fn wait(self) -> io::Result<OptimizeResponse> {
        let timeout = self.timeout;
        self.wait_timeout(timeout)
    }

    /// Waits for the response under an explicit timeout.
    ///
    /// # Errors
    ///
    /// `TimedOut` when no response arrived in time, `ConnectionAborted`
    /// when the connection closed first.
    pub fn wait_timeout(self, timeout: Duration) -> io::Result<OptimizeResponse> {
        match self.receiver.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "no response for request_id {} within {timeout:?}",
                    self.request_id
                ),
            )),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!(
                    "connection closed before request_id {} was answered",
                    self.request_id
                ),
            )),
        }
    }
}

/// The one-shot facade over the protocol, bound to one daemon address.
/// Typed calls ([`Client::request`], [`Client::status`]) open a
/// short-lived v2 session per call; the raw byte surfaces
/// ([`Client::request_raw`], [`Client::request_bytes`]) speak the bare v1
/// single-exchange framing. Cheap to copy and share across threads.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr` with a 60-second per-request
    /// timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A [`ClientBuilder`] for this address and timeout — the path from
    /// the facade to a persistent pipelined [`Connection`].
    #[must_use]
    pub fn builder(&self) -> ClientBuilder {
        ClientBuilder::new(self.addr).timeout(self.timeout)
    }

    /// Sends raw payload bytes as one bare v1 frame and returns the raw
    /// response frame. This is the byte-level surface: the determinism and
    /// v1-compatibility tests compare these bytes directly, and the
    /// rejection tests push malformed payloads through it. The server
    /// closes the connection after the one exchange.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the connection, write or read fails.
    pub fn request_raw(&self, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_frame(&mut stream, payload)?;
        read_frame(&mut stream)
    }

    /// Sends a request as one bare v1 frame and returns the raw response
    /// frame (already-typed requests, byte-level responses — what the
    /// repeat-traffic byte-identity proof uses).
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails or the request cannot
    /// be encoded.
    pub fn request_bytes(&self, request: &OptimizeRequest) -> io::Result<Vec<u8>> {
        let payload = serde_json::to_string(request)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        self.request_raw(payload.as_bytes())
    }

    /// Sends a request over a short-lived v2 session and decodes the typed
    /// response.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails.
    pub fn request(&self, request: &OptimizeRequest) -> io::Result<OptimizeResponse> {
        self.try_request(request)
            .map_err(ConnectionFailure::into_io)
    }

    /// [`Client::request`], but a transport failure is classified as a
    /// [`ConnectionFailure`]: [`ConnectionFailure::NeverAdmitted`] when
    /// it happened before anything could reach the daemon (connect or
    /// encode failed), [`ConnectionFailure::FateUnknown`] once bytes may
    /// have hit the wire (write, wait, or timeout failed).
    ///
    /// # Errors
    ///
    /// The classified transport failure; server-side rejections are typed
    /// responses, not errors.
    pub fn try_request(
        &self,
        request: &OptimizeRequest,
    ) -> Result<OptimizeResponse, ConnectionFailure> {
        let connection = self
            .builder()
            .connect()
            .map_err(ConnectionFailure::NeverAdmitted)?;
        let handle = connection.submit(request).map_err(|err| {
            if err.kind() == io::ErrorKind::InvalidData {
                // Encoding failed before the write: nothing hit the wire.
                ConnectionFailure::NeverAdmitted(err)
            } else {
                // The frame write failed part-way — a prefix may have
                // landed, and on some paths the peer has the whole frame
                // before our side reports the error.
                ConnectionFailure::FateUnknown(err)
            }
        })?;
        handle.wait().map_err(ConnectionFailure::FateUnknown)
    }

    /// Sends a request, retrying transient failures — connection/IO errors,
    /// `Busy` and `Internal` answers — under the policy's deterministic
    /// bounded backoff. Definitive answers (`Ok`, `BadRequest`,
    /// `UnsupportedVersion`, `DeadlineExceeded`) return immediately:
    /// retrying them would change semantics, not heal anything.
    ///
    /// Both [`ConnectionFailure`] classes are retried, but for different
    /// reasons. `NeverAdmitted` is unconditionally safe — the daemon never
    /// saw the request. `FateUnknown` is safe *for this protocol
    /// specifically* because every request is idempotent: an optimize
    /// request canonicalizes to a deterministic [`crate::RequestKey`], so a
    /// re-ask either hits the store entry the lost first attempt produced
    /// (`from_store: true`, byte-identical report) or deduplicates against
    /// its in-flight search; status probes are pure reads. A client built
    /// on this API for a non-idempotent service must retry only
    /// [`ConnectionFailure::NeverAdmitted`].
    ///
    /// # Errors
    ///
    /// Returns the last IO error when every attempt failed at the transport
    /// level. A final `Busy`/`Internal` answer after exhausting the
    /// attempts is returned as that typed response, not an error.
    pub fn request_with_retry(
        &self,
        request: &OptimizeRequest,
        policy: &RetryPolicy,
    ) -> io::Result<OptimizeResponse> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match self.try_request(request) {
                Ok(OptimizeResponse::Err(error))
                    if matches!(error.code, ErrorCode::Busy | ErrorCode::Internal)
                        && attempt + 1 < attempts =>
                {
                    last = Some(Ok(OptimizeResponse::Err(error)));
                }
                Ok(response) => return Ok(response),
                Err(failure) => {
                    // Safe to retry either way: see the idempotency note
                    // in the method docs.
                    if attempt + 1 == attempts {
                        return Err(failure.into_io());
                    }
                    last = Some(Err(failure.into_io()));
                }
            }
            std::thread::sleep(policy.backoff(attempt));
        }
        last.unwrap_or_else(|| {
            Err(io::Error::other(
                "retry policy allowed zero attempts".to_string(),
            ))
        })
    }

    /// Asks the daemon for its live counters (see
    /// [`StatusRequest`]). Status probes are answered at admission, so this
    /// works even when the daemon is saturated or draining. Sent as a bare
    /// v1 frame so it stays usable against either protocol generation.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails, the response is not
    /// valid JSON, or the daemon answers with a typed error.
    pub fn status(&self) -> io::Result<StatusResult> {
        let payload = serde_json::to_string(&StatusRequest::new())
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let raw = self.request_raw(payload.as_bytes())?;
        let text = String::from_utf8(raw)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let response: OptimizeResponse = serde_json::from_str(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        match response {
            OptimizeResponse::Status(status) => Ok(status),
            OptimizeResponse::Ok(_) => Err(io::Error::other(
                "daemon answered a status probe with an optimize result".to_string(),
            )),
            OptimizeResponse::Err(error) => Err(io::Error::other(error.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn a_dead_address_is_classified_never_admitted() {
        // Bind then drop a listener so the port is known-refusing.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = Client::new(addr).with_timeout(Duration::from_secs(2));
        let failure = client
            .try_request(&OptimizeRequest::table2("softmax", "ampere"))
            .unwrap_err();
        assert!(failure.never_admitted(), "{failure}");
        assert!(failure.to_string().contains("never admitted"));
    }

    #[test]
    fn an_accept_then_drop_peer_is_classified_fate_unknown() {
        // A listener that accepts the connection and immediately drops it:
        // the connect succeeds, so from then on any failure leaves the
        // request's fate unknown.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepter = std::thread::spawn(move || {
            let _ = listener.accept();
        });
        let client = Client::new(addr).with_timeout(Duration::from_secs(2));
        let failure = client
            .try_request(&OptimizeRequest::table2("softmax", "ampere"))
            .unwrap_err();
        accepter.join().unwrap();
        assert!(!failure.never_admitted(), "{failure}");
        assert!(failure.to_string().contains("fate unknown"));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(20));
        assert_eq!(policy.backoff(1), Duration::from_millis(40));
        assert_eq!(policy.backoff(2), Duration::from_millis(80));
        assert_eq!(policy.backoff(3), Duration::from_millis(100));
        assert_eq!(policy.backoff(31), Duration::from_millis(100));
        assert_eq!(policy.backoff(32), Duration::from_millis(100));
    }
}
