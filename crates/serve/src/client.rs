//! A minimal blocking client for the `cuasmrld` wire protocol: one
//! connection, one request frame, one response frame. For fault-tolerant
//! callers, [`Client::request_with_retry`] layers bounded, deterministic
//! backoff over transient failures (`Busy`, `Internal`, connection
//! errors) — the retry schedule is a pure function of the [`RetryPolicy`],
//! so chaos tests can assert exactly how a healed request behaves.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, OptimizeRequest, OptimizeResponse, StatusRequest, StatusResult,
};
use crate::ErrorCode;

/// A deterministic bounded-backoff retry schedule: attempt `n` (0-based)
/// sleeps `min(base_delay << n, max_delay)` before retrying. No jitter —
/// determinism is the point; the daemon's admission queue, not randomness,
/// spreads load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Four attempts backing off 20 ms → 40 ms → 80 ms (capped at 500 ms) —
    /// enough to ride out a worker respawn or a queue-full burst without
    /// stretching test wall-clock.
    #[must_use]
    pub fn quick() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
        }
    }

    /// The backoff slept after a failed attempt `n` (0-based):
    /// `min(base_delay * 2^n, max_delay)`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |delay| delay.min(self.max_delay))
    }
}

/// A client bound to one daemon address. Connections are per-request (the
/// protocol is one exchange per connection), so a `Client` is cheap to
/// clone and share across threads.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr` with a 60-second per-request
    /// timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides the connect/read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends raw payload bytes as one frame and returns the raw response
    /// frame. This is the byte-level surface: the determinism tests compare
    /// these bytes directly, and the rejection tests push malformed
    /// payloads through it.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the connection, write or read fails.
    pub fn request_raw(&self, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        write_frame(&mut stream, payload)?;
        read_frame(&mut stream)
    }

    /// Sends a request and returns the raw response frame (already-typed
    /// requests, byte-level responses — what the repeat-traffic
    /// byte-identity proof uses).
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails or the request cannot
    /// be encoded.
    pub fn request_bytes(&self, request: &OptimizeRequest) -> io::Result<Vec<u8>> {
        let payload = serde_json::to_string(request)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        self.request_raw(payload.as_bytes())
    }

    /// Sends a request and decodes the typed response.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails or the response frame
    /// is not valid response JSON.
    pub fn request(&self, request: &OptimizeRequest) -> io::Result<OptimizeResponse> {
        let raw = self.request_bytes(request)?;
        let text = String::from_utf8(raw)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        serde_json::from_str(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }

    /// Sends a request, retrying transient failures — connection/IO errors,
    /// `Busy` and `Internal` answers — under the policy's deterministic
    /// bounded backoff. Definitive answers (`Ok`, `BadRequest`,
    /// `UnsupportedVersion`, `DeadlineExceeded`) return immediately:
    /// retrying them would change semantics, not heal anything.
    ///
    /// # Errors
    ///
    /// Returns the last IO error when every attempt failed at the transport
    /// level. A final `Busy`/`Internal` answer after exhausting the
    /// attempts is returned as that typed response, not an error.
    pub fn request_with_retry(
        &self,
        request: &OptimizeRequest,
        policy: &RetryPolicy,
    ) -> io::Result<OptimizeResponse> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match self.request(request) {
                Ok(OptimizeResponse::Err(error))
                    if matches!(error.code, ErrorCode::Busy | ErrorCode::Internal)
                        && attempt + 1 < attempts =>
                {
                    last = Some(Ok(OptimizeResponse::Err(error)));
                }
                Ok(response) => return Ok(response),
                Err(err) => {
                    if attempt + 1 == attempts {
                        return Err(err);
                    }
                    last = Some(Err(err));
                }
            }
            std::thread::sleep(policy.backoff(attempt));
        }
        last.unwrap_or_else(|| {
            Err(io::Error::other(
                "retry policy allowed zero attempts".to_string(),
            ))
        })
    }

    /// Asks the daemon for its live counters (see
    /// [`StatusRequest`]). Status probes are answered at admission, so this
    /// works even when the daemon is saturated or draining.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the exchange fails, the response is not
    /// valid JSON, or the daemon answers with a typed error.
    pub fn status(&self) -> io::Result<StatusResult> {
        let payload = serde_json::to_string(&StatusRequest::new())
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let raw = self.request_raw(payload.as_bytes())?;
        let text = String::from_utf8(raw)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        let response: OptimizeResponse = serde_json::from_str(&text)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        match response {
            OptimizeResponse::Status(status) => Ok(status),
            OptimizeResponse::Ok(_) => Err(io::Error::other(
                "daemon answered a status probe with an optimize result".to_string(),
            )),
            OptimizeResponse::Err(error) => Err(io::Error::other(error.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(20));
        assert_eq!(policy.backoff(1), Duration::from_millis(40));
        assert_eq!(policy.backoff(2), Duration::from_millis(80));
        assert_eq!(policy.backoff(3), Duration::from_millis(100));
        assert_eq!(policy.backoff(31), Duration::from_millis(100));
        assert_eq!(policy.backoff(32), Duration::from_millis(100));
    }
}
