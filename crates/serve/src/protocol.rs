//! The `cuasmrld` wire protocol: length-prefixed JSON frames over a local
//! TCP socket, plus the request canonicalization that turns wire text into
//! the exact [`KernelSpec`]/[`gpusim::GpuConfig`] tuple the optimizer runs.
//!
//! Framing: every message is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 JSON. Frames above [`MAX_FRAME_LEN`] are rejected
//! before allocation. One request/response exchange per connection.
//!
//! Versioning: [`PROTOCOL_VERSION`] is carried in every request and
//! response. A request with a different version is answered with a typed
//! [`ErrorCode::UnsupportedVersion`] error, never a silent
//! reinterpretation. `docs/SERVICE.md` documents the full schemas and the
//! compatibility rules.

use std::io::{self, Read, Write};

use cuasmrl::OptimizationReport;
use kernels::{KernelSpec, ProblemShape};
use serde::{Deserialize, Serialize};

use crate::server::ServiceStats;
use crate::store::StoreStats;

/// Version of the request/response JSON schema (see `docs/SERVICE.md`).
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame's payload, enforced on both read and write so a
/// malformed length prefix can never trigger a giant allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on a request's `deadline_ms` (24 hours). Anything above it
/// is a typo or an overflow probe, not a schedule budget — rejected with
/// [`ErrorCode::BadRequest`] at decode so `u64::MAX`-style arithmetic never
/// reaches a worker.
pub const MAX_DEADLINE_MS: u64 = 86_400_000;

/// A kernel-optimization request.
///
/// `kernel` and `arch` accept the same names and aliases as the CLI
/// surfaces (resolved through [`cuasmrl::cli`]); everything optional
/// defaults server-side, so the minimal request is just
/// `{"protocol_version": 1, "kernel": "softmax", "arch": "ampere"}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizeRequest {
    /// Must equal [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// Kernel name from the Table-2 catalog (case-insensitive).
    pub kernel: String,
    /// Architecture name or alias (`ampere`, `a100`, `sm90`, …).
    pub arch: String,
    /// Explicit problem shape; defaults to the paper's Table-2 shape for
    /// the kernel, scaled by `scale`.
    #[serde(default)]
    pub shape: Option<ProblemShape>,
    /// Divisor applied to the paper shape when `shape` is absent; defaults
    /// to the server's configured scale.
    #[serde(default)]
    pub scale: Option<usize>,
    /// Base seed for the search; defaults to the server's configured seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Deadline budget in milliseconds, measured from admission. A request
    /// still queued when its deadline expires is answered with
    /// [`ErrorCode::DeadlineExceeded`] instead of being computed; one
    /// already running when it expires is preempted at the next search
    /// boundary and answered with a degraded best-so-far result. `0` means
    /// "already expired" (admission-control probe); absent means no
    /// deadline. Values above [`MAX_DEADLINE_MS`] are rejected with
    /// [`ErrorCode::BadRequest`].
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

impl OptimizeRequest {
    /// The minimal request: a Table-2 kernel at the server's default scale
    /// and seed, no deadline.
    #[must_use]
    pub fn table2(kernel: impl Into<String>, arch: impl Into<String>) -> Self {
        OptimizeRequest {
            protocol_version: PROTOCOL_VERSION,
            kernel: kernel.into(),
            arch: arch.into(),
            shape: None,
            scale: None,
            seed: None,
            deadline_ms: None,
        }
    }
}

/// Server-side fallbacks for the optional request fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestDefaults {
    /// Scale divisor applied to paper shapes when the request names none.
    pub scale: usize,
    /// Base search seed when the request names none.
    pub seed: u64,
}

/// A fully validated request: the exact device profile, kernel spec and
/// seed the optimizer will run. Two requests that canonicalize to the same
/// value are the same work — this tuple (not the wire text) keys the
/// schedule store.
#[derive(Debug, Clone)]
pub struct CanonicalRequest {
    /// Resolved device profile (canonical name, aliases folded).
    pub gpu: gpusim::GpuConfig,
    /// Resolved kernel spec (explicit shape, or the scaled paper shape).
    pub spec: KernelSpec,
    /// Base search seed.
    pub seed: u64,
}

impl OptimizeRequest {
    /// Validates and canonicalizes the request.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServiceError`] — [`ErrorCode::UnsupportedVersion`]
    /// on a protocol-version mismatch, [`ErrorCode::BadRequest`] on an
    /// unknown kernel/architecture name or a degenerate shape.
    pub fn canonicalize(
        &self,
        defaults: &RequestDefaults,
    ) -> Result<CanonicalRequest, ServiceError> {
        if self.protocol_version != PROTOCOL_VERSION {
            return Err(ServiceError {
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "protocol version {} is not supported (this server speaks {})",
                    self.protocol_version, PROTOCOL_VERSION
                ),
            });
        }
        if let Some(deadline_ms) = self.deadline_ms {
            if deadline_ms > MAX_DEADLINE_MS {
                return Err(ServiceError {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "deadline_ms {deadline_ms} exceeds the maximum of {MAX_DEADLINE_MS} (24h)"
                    ),
                });
            }
        }
        let gpu = cuasmrl::cli::resolve_arch(&self.arch).map_err(ServiceError::bad_request)?;
        let kind = cuasmrl::cli::resolve_kernel(&self.kernel).map_err(ServiceError::bad_request)?;
        let spec = match self.shape {
            Some(shape) => {
                if [shape.batch, shape.m, shape.n, shape.k].contains(&0) {
                    return Err(ServiceError {
                        code: ErrorCode::BadRequest,
                        message: format!("shape dimensions must be positive, got {shape:?}"),
                    });
                }
                KernelSpec { kind, shape }
            }
            None => KernelSpec::paper(kind).scaled_by(self.scale.unwrap_or(defaults.scale)),
        };
        Ok(CanonicalRequest {
            gpu,
            spec,
            seed: self.seed.unwrap_or(defaults.seed),
        })
    }
}

/// Identity of a canonical request inside the schedule store: a readable
/// `arch`/`kernel` prefix plus an FNV-1a digest of the full canonical
/// tuple. [`RequestKey::file_stem`] names the store entry on disk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Canonical architecture name.
    pub arch: String,
    /// Canonical kernel name.
    pub kernel: String,
    /// Hex FNV-1a-64 digest of [`RequestKey::canonical`].
    pub digest: String,
    /// The canonical tuple rendered as text (digest preimage).
    pub canonical: String,
}

impl RequestKey {
    /// Derives the key of a canonical request.
    #[must_use]
    pub fn of(request: &CanonicalRequest) -> RequestKey {
        let shape = &request.spec.shape;
        let canonical = format!(
            "arch={};kernel={};batch={};m={};n={};k={};seed={}",
            request.gpu.name,
            request.spec.kind.name(),
            shape.batch,
            shape.m,
            shape.n,
            shape.k,
            request.seed
        );
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        RequestKey {
            arch: request.gpu.name.clone(),
            kernel: request.spec.kind.name().to_string(),
            digest: format!("{hash:016x}"),
            canonical,
        }
    }

    /// File-name stem of this key's store entry (and training checkpoint).
    #[must_use]
    pub fn file_stem(&self) -> String {
        format!("{}_{}_{}", self.arch, self.kernel, self.digest)
    }
}

/// A successful optimization answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizeResult {
    /// Echo of [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// Canonical architecture name the request resolved to.
    pub arch: String,
    /// Canonical kernel name the request resolved to.
    pub kernel: String,
    /// The request's store key digest (see [`RequestKey`]).
    pub request_key: String,
    /// Whether this answer came from the persistent schedule store rather
    /// than a fresh search.
    pub from_store: bool,
    /// Whether the search was preempted (deadline or drain) before its
    /// schedule completed: the report is the verified best-schedule-so-far,
    /// not the converged answer. The training checkpoint is persisted, so
    /// re-asking the same request later resumes the search and returns the
    /// full answer. Added after v1 ships as `false` on old answers
    /// (additive, `#[serde(default)]`).
    #[serde(default)]
    pub degraded: bool,
    /// The optimization report, bit-identical to what a direct
    /// [`cuasmrl::SuiteOptimizer`] run produces for the same canonical
    /// request (unless `degraded`).
    pub report: OptimizationReport,
}

/// A status probe: `{"protocol_version": 1, "query": "status"}`. Detected
/// by its required `query` field (an optimize request has none), answered
/// at admission without touching the queue — so it works even when the
/// daemon is saturated or draining.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusRequest {
    /// Must equal [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// Must be `"status"` (room for future query kinds, additively).
    pub query: String,
}

impl StatusRequest {
    /// The status probe for the current protocol version.
    #[must_use]
    pub fn new() -> StatusRequest {
        StatusRequest {
            protocol_version: PROTOCOL_VERSION,
            query: "status".to_string(),
        }
    }

    /// Validates the probe.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::UnsupportedVersion`] on a version mismatch and
    /// [`ErrorCode::BadRequest`] on an unknown query kind.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.protocol_version != PROTOCOL_VERSION {
            return Err(ServiceError {
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "protocol version {} is not supported (this server speaks {})",
                    self.protocol_version, PROTOCOL_VERSION
                ),
            });
        }
        if self.query != "status" {
            return Err(ServiceError {
                code: ErrorCode::BadRequest,
                message: format!("unknown query kind {:?}", self.query),
            });
        }
        Ok(())
    }
}

impl Default for StatusRequest {
    fn default() -> Self {
        StatusRequest::new()
    }
}

/// The answer to a [`StatusRequest`]: the daemon's live counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResult {
    /// Echo of [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// Aggregate request counters since startup.
    pub stats: ServiceStats,
    /// Schedule-store counters since startup.
    pub store: StoreStats,
    /// Configured worker-thread count.
    pub workers: usize,
    /// Configured admission-queue depth.
    pub queue_capacity: usize,
    /// Whether the daemon is draining (shutdown in progress: new work is
    /// answered `Busy`, in-flight searches are being preempted).
    pub draining: bool,
}

/// Error taxonomy of the service (see `docs/SERVICE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed frame/JSON, unknown kernel or architecture, bad shape.
    BadRequest,
    /// `protocol_version` mismatch.
    UnsupportedVersion,
    /// Admission control rejected the request: the bounded queue is full.
    /// Retrying later is the expected client behavior.
    Busy,
    /// The request's deadline expired before a worker picked it up.
    DeadlineExceeded,
    /// Unexpected server-side failure.
    Internal,
}

/// A typed error answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    fn bad_request(err: cuasmrl::cli::UnknownName) -> ServiceError {
        ServiceError {
            code: ErrorCode::BadRequest,
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// One response frame: a result, a status answer, or a typed error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum OptimizeResponse {
    /// The request was served.
    Ok(OptimizeResult),
    /// The status probe's answer (additive: only ever sent in reply to a
    /// [`StatusRequest`], so v1 optimize clients never see it).
    Status(StatusResult),
    /// The request was rejected or failed; see the [`ErrorCode`].
    Err(ServiceError),
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns an IO error on a short write, or `InvalidData` when the payload
/// exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
            )
        })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Returns an IO error on a short read, or `InvalidData` when the length
/// prefix exceeds [`MAX_FRAME_LEN`] (the payload is not read in that case).
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults { scale: 16, seed: 7 }
    }

    #[test]
    fn frames_round_trip_and_oversized_frames_are_refused() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        assert_eq!(&buffer[..4], &5u32.to_be_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");

        let mut oversized = Vec::from((MAX_FRAME_LEN + 1).to_be_bytes());
        oversized.extend_from_slice(b"x");
        let err = read_frame(&mut io::Cursor::new(oversized)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn canonicalization_folds_aliases_into_one_key() {
        let a = OptimizeRequest::table2("softmax", "a100")
            .canonicalize(&defaults())
            .unwrap();
        let b = OptimizeRequest::table2("SOFTMAX", "Ampere")
            .canonicalize(&defaults())
            .unwrap();
        assert_eq!(RequestKey::of(&a), RequestKey::of(&b));
        assert_eq!(a.spec, KernelSpec::scaled(kernels::KernelKind::Softmax, 16));
        assert_eq!(a.seed, 7);
        // Explicit knobs reach the key: different seed, different entry.
        let mut custom = OptimizeRequest::table2("softmax", "a100");
        custom.seed = Some(8);
        let c = custom.canonicalize(&defaults()).unwrap();
        assert_ne!(RequestKey::of(&a).digest, RequestKey::of(&c).digest);
        assert!(RequestKey::of(&a).file_stem().contains("softmax"));
    }

    #[test]
    fn canonicalization_rejects_bad_requests_with_typed_errors() {
        let mut wrong_version = OptimizeRequest::table2("softmax", "ampere");
        wrong_version.protocol_version = 99;
        assert_eq!(
            wrong_version.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::UnsupportedVersion
        );
        let unknown_kernel = OptimizeRequest::table2("conv3d", "ampere");
        let err = unknown_kernel.canonicalize(&defaults()).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("conv3d"));
        let unknown_arch = OptimizeRequest::table2("softmax", "pascal");
        assert_eq!(
            unknown_arch.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::BadRequest
        );
        let mut degenerate = OptimizeRequest::table2("softmax", "ampere");
        degenerate.shape = Some(ProblemShape {
            batch: 1,
            m: 0,
            n: 64,
            k: 1,
        });
        assert_eq!(
            degenerate.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn absurd_deadlines_are_rejected_at_decode() {
        let mut request = OptimizeRequest::table2("softmax", "ampere");
        request.deadline_ms = Some(MAX_DEADLINE_MS);
        assert!(request.canonicalize(&defaults()).is_ok());
        request.deadline_ms = Some(MAX_DEADLINE_MS + 1);
        let err = request.canonicalize(&defaults()).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("deadline_ms"));
        request.deadline_ms = Some(u64::MAX);
        assert_eq!(
            request.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::BadRequest
        );
        // Zero stays legal: it is the admission-control probe.
        request.deadline_ms = Some(0);
        assert!(request.canonicalize(&defaults()).is_ok());
    }

    #[test]
    fn every_error_code_round_trips_through_the_wire_form() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Busy,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
        ] {
            let error = ServiceError {
                code,
                message: format!("probe for {code:?}"),
            };
            let json = serde_json::to_string(&OptimizeResponse::Err(error.clone())).unwrap();
            let decoded: OptimizeResponse = serde_json::from_str(&json).unwrap();
            let OptimizeResponse::Err(back) = decoded else {
                panic!("expected an error response, got {json}");
            };
            assert_eq!(back, error);
        }
    }

    #[test]
    fn status_requests_are_distinguishable_from_optimize_requests() {
        // The status probe decodes as a StatusRequest but not as an
        // OptimizeRequest, and vice versa — `query` is the discriminant.
        let probe = serde_json::to_string(&StatusRequest::new()).unwrap();
        let decoded: StatusRequest = serde_json::from_str(&probe).unwrap();
        assert!(decoded.validate().is_ok());
        assert!(serde_json::from_str::<OptimizeRequest>(&probe).is_err());

        let optimize = serde_json::to_string(&OptimizeRequest::table2("bmm", "ampere")).unwrap();
        assert!(serde_json::from_str::<StatusRequest>(&optimize).is_err());

        let mut stale = StatusRequest::new();
        stale.protocol_version = 99;
        assert_eq!(
            stale.validate().unwrap_err().code,
            ErrorCode::UnsupportedVersion
        );
        let mut unknown = StatusRequest::new();
        unknown.query = "metrics".to_string();
        assert_eq!(unknown.validate().unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn degraded_defaults_to_false_on_pre_preemption_answers() {
        // A v1 answer written before the `degraded` field existed must still
        // decode (additive change).
        let json = r#"{
            "protocol_version": 1,
            "arch": "ampere",
            "kernel": "softmax",
            "request_key": "00000000deadbeef",
            "from_store": true,
            "report": {
                "kernel": "softmax",
                "baseline_us": 10.0,
                "optimized_us": 10.0,
                "speedup": 1.0,
                "verified": true,
                "optimized_listing": "",
                "moves": []
            }
        }"#;
        let result: OptimizeResult = serde_json::from_str(json).unwrap();
        assert!(!result.degraded);
    }

    #[test]
    fn minimal_request_json_decodes_with_defaults() {
        let request: OptimizeRequest =
            serde_json::from_str(r#"{"protocol_version": 1, "kernel": "bmm", "arch": "hopper"}"#)
                .unwrap();
        assert_eq!(request, OptimizeRequest::table2("bmm", "hopper"));
        let canonical = request.canonicalize(&defaults()).unwrap();
        assert_eq!(
            canonical.gpu.name,
            cuasmrl::cli::resolve_arch("hopper").unwrap().name
        );
    }
}
