//! The `cuasmrld` wire protocol: length-prefixed JSON frames over a local
//! TCP socket, plus the request canonicalization that turns wire text into
//! the exact [`KernelSpec`]/[`gpusim::GpuConfig`] tuple the optimizer runs.
//!
//! Framing: every message is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 JSON. Frames above [`MAX_FRAME_LEN`] are rejected
//! before allocation.
//!
//! Connection modes (since protocol v2): the *shape of the first frame*
//! decides how a connection behaves.
//!
//! - A bare [`OptimizeRequest`]/[`StatusRequest`] frame is the v1
//!   single-exchange protocol: one request, one untagged response, and the
//!   server closes the connection. Every v1 client keeps working unchanged.
//! - A [`TaggedRequest`] frame (`{"request_id": N, "body": {...}}`) opens a
//!   persistent session: the connection stays open across exchanges, the
//!   client may pipeline multiple in-flight requests, and each response
//!   comes back as a [`TaggedResponse`] carrying the client-chosen
//!   `request_id` — possibly out of submission order.
//!
//! Versioning: every request and response carries a `protocol_version`.
//! This server speaks [`PROTOCOL_VERSION`] and still accepts
//! [`PROTOCOL_V1`]; responses echo the request's version so a v1 client
//! sees byte-identical v1 answers. Any other version is answered with a
//! typed [`ErrorCode::UnsupportedVersion`] error, never a silent
//! reinterpretation. `docs/SERVICE.md` documents the full schemas, the
//! version-sniffing matrix and the compatibility rules.

use std::io::{self, Read, Write};

use cuasmrl::OptimizationReport;
use kernels::{KernelSpec, ProblemShape};
use serde::{Deserialize, Serialize};

use crate::server::ServiceStats;
use crate::store::StoreStats;

/// Version of the request/response JSON schema (see `docs/SERVICE.md`).
pub const PROTOCOL_VERSION: u32 = 2;

/// The original single-exchange protocol version, still accepted: a bare
/// (untagged) frame carrying it is answered in v1 style — one untagged
/// response echoing version 1, then the connection closes.
pub const PROTOCOL_V1: u32 = 1;

/// The `request_id` the server uses when a malformed session frame carries
/// no salvageable id. Clients must start their ids at 1 so an error tagged
/// with this id is unambiguously "your frame was unattributable".
pub const UNATTRIBUTED_REQUEST_ID: u64 = 0;

/// Upper bound on a frame's payload, enforced on both read and write so a
/// malformed length prefix can never trigger a giant allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on a request's `deadline_ms` (24 hours). Anything above it
/// is a typo or an overflow probe, not a schedule budget — rejected with
/// [`ErrorCode::BadRequest`] at decode so `u64::MAX`-style arithmetic never
/// reaches a worker.
pub const MAX_DEADLINE_MS: u64 = 86_400_000;

/// The admission rank of a request with no deadline: one past
/// [`MAX_DEADLINE_MS`], so every deadlined request outranks every
/// deadline-free one (at equal priority).
pub const NO_DEADLINE_RANK_MS: i64 = MAX_DEADLINE_MS as i64 + 1;

/// How many milliseconds of effective deadline one unit of `priority` is
/// worth: the admission rank is `deadline − priority × PRIORITY_BIAS_MS`,
/// so `priority: 5` competes like a request whose deadline is 5 s tighter.
pub const PRIORITY_BIAS_MS: i64 = 1_000;

/// The deterministic admission rank of a request: lower ranks are served
/// first, ties broken by admission ordinal (arrival order). A pure
/// function of the request — no wall clock, no randomness — so the same
/// request set produces the same served order on every replay.
///
/// `deadline_ms: None` ranks at [`NO_DEADLINE_RANK_MS`] (behind every
/// deadlined request); `priority` biases the rank additively by
/// [`PRIORITY_BIAS_MS`] per unit (positive priority serves earlier).
#[must_use]
pub fn admission_rank(deadline_ms: Option<u64>, priority: Option<i32>) -> i64 {
    let base = deadline_ms.map_or(NO_DEADLINE_RANK_MS, |ms| ms.min(MAX_DEADLINE_MS) as i64);
    // i32 × 1000 fits comfortably in i64; no overflow is possible.
    base - i64::from(priority.unwrap_or(0)) * PRIORITY_BIAS_MS
}

/// Checks a request's `protocol_version` against the accepted set
/// ({[`PROTOCOL_V1`], [`PROTOCOL_VERSION`]}).
///
/// # Errors
///
/// Returns [`ErrorCode::UnsupportedVersion`] for any other version.
pub fn check_version(protocol_version: u32) -> Result<(), ServiceError> {
    if protocol_version == PROTOCOL_VERSION || protocol_version == PROTOCOL_V1 {
        return Ok(());
    }
    Err(ServiceError::new(
        ErrorCode::UnsupportedVersion,
        format!(
            "protocol version {protocol_version} is not supported \
             (this server speaks {PROTOCOL_VERSION}, and still accepts {PROTOCOL_V1})"
        ),
    ))
}

/// A kernel-optimization request.
///
/// `kernel` and `arch` accept the same names and aliases as the CLI
/// surfaces (resolved through [`cuasmrl::cli`]); everything optional
/// defaults server-side, so the minimal request is just
/// `{"protocol_version": 2, "kernel": "softmax", "arch": "ampere"}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizeRequest {
    /// [`PROTOCOL_VERSION`] or [`PROTOCOL_V1`]; echoed in the response.
    pub protocol_version: u32,
    /// Kernel name from the Table-2 catalog (case-insensitive).
    pub kernel: String,
    /// Architecture name or alias (`ampere`, `a100`, `sm90`, …).
    pub arch: String,
    /// Explicit problem shape; defaults to the paper's Table-2 shape for
    /// the kernel, scaled by `scale`.
    #[serde(default)]
    pub shape: Option<ProblemShape>,
    /// Divisor applied to the paper shape when `shape` is absent; defaults
    /// to the server's configured scale.
    #[serde(default)]
    pub scale: Option<usize>,
    /// Base seed for the search; defaults to the server's configured seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Deadline budget in milliseconds, measured from admission. A request
    /// still queued when its deadline expires is answered with
    /// [`ErrorCode::DeadlineExceeded`] instead of being computed; one
    /// already running when it expires is preempted at the next search
    /// boundary and answered with a degraded best-so-far result. `0` means
    /// "already expired" (admission-control probe); absent means no
    /// deadline. Values above [`MAX_DEADLINE_MS`] are rejected with
    /// [`ErrorCode::BadRequest`].
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Additive admission-priority bias: the request is queued as if its
    /// deadline were `priority ×` [`PRIORITY_BIAS_MS`] ms tighter (see
    /// [`admission_rank`]). Negative values deprioritize. Priority affects
    /// *ordering only* — it is not part of the canonical request, so it
    /// never changes the answer or the store key. Added in v2 as an
    /// additive field: v1 frames without it decode as `None`.
    #[serde(default)]
    pub priority: Option<i32>,
}

impl OptimizeRequest {
    /// The minimal request: a Table-2 kernel at the server's default scale
    /// and seed, no deadline, no priority.
    #[must_use]
    pub fn table2(kernel: impl Into<String>, arch: impl Into<String>) -> Self {
        OptimizeRequest {
            protocol_version: PROTOCOL_VERSION,
            kernel: kernel.into(),
            arch: arch.into(),
            shape: None,
            scale: None,
            seed: None,
            deadline_ms: None,
            priority: None,
        }
    }

    /// This request's deterministic admission rank (see [`admission_rank`]).
    #[must_use]
    pub fn rank(&self) -> i64 {
        admission_rank(self.deadline_ms, self.priority)
    }
}

/// Server-side fallbacks for the optional request fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestDefaults {
    /// Scale divisor applied to paper shapes when the request names none.
    pub scale: usize,
    /// Base search seed when the request names none.
    pub seed: u64,
}

/// A fully validated request: the exact device profile, kernel spec and
/// seed the optimizer will run. Two requests that canonicalize to the same
/// value are the same work — this tuple (not the wire text) keys the
/// schedule store. Deadline and priority are deliberately absent: they
/// shape *when* the work runs, never *what* the answer is.
#[derive(Debug, Clone)]
pub struct CanonicalRequest {
    /// Resolved device profile (canonical name, aliases folded).
    pub gpu: gpusim::GpuConfig,
    /// Resolved kernel spec (explicit shape, or the scaled paper shape).
    pub spec: KernelSpec,
    /// Base search seed.
    pub seed: u64,
}

impl OptimizeRequest {
    /// Validates and canonicalizes the request.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServiceError`] — [`ErrorCode::UnsupportedVersion`]
    /// on a protocol-version outside {1, 2}, [`ErrorCode::BadRequest`] on
    /// an unknown kernel/architecture name or a degenerate shape.
    pub fn canonicalize(
        &self,
        defaults: &RequestDefaults,
    ) -> Result<CanonicalRequest, ServiceError> {
        check_version(self.protocol_version)?;
        if let Some(deadline_ms) = self.deadline_ms {
            if deadline_ms > MAX_DEADLINE_MS {
                return Err(ServiceError::new(
                    ErrorCode::BadRequest,
                    format!(
                        "deadline_ms {deadline_ms} exceeds the maximum of {MAX_DEADLINE_MS} (24h)"
                    ),
                ));
            }
        }
        let gpu = cuasmrl::cli::resolve_arch(&self.arch).map_err(ServiceError::bad_request)?;
        let kind = cuasmrl::cli::resolve_kernel(&self.kernel).map_err(ServiceError::bad_request)?;
        let spec = match self.shape {
            Some(shape) => {
                if [shape.batch, shape.m, shape.n, shape.k].contains(&0) {
                    return Err(ServiceError::new(
                        ErrorCode::BadRequest,
                        format!("shape dimensions must be positive, got {shape:?}"),
                    ));
                }
                KernelSpec { kind, shape }
            }
            None => KernelSpec::paper(kind).scaled_by(self.scale.unwrap_or(defaults.scale)),
        };
        Ok(CanonicalRequest {
            gpu,
            spec,
            seed: self.seed.unwrap_or(defaults.seed),
        })
    }
}

/// Identity of a canonical request inside the schedule store: a readable
/// `arch`/`kernel` prefix plus an FNV-1a digest of the full canonical
/// tuple. [`RequestKey::file_stem`] names the store entry on disk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Canonical architecture name.
    pub arch: String,
    /// Canonical kernel name.
    pub kernel: String,
    /// Hex FNV-1a-64 digest of [`RequestKey::canonical`].
    pub digest: String,
    /// The canonical tuple rendered as text (digest preimage).
    pub canonical: String,
}

impl RequestKey {
    /// Derives the key of a canonical request.
    #[must_use]
    pub fn of(request: &CanonicalRequest) -> RequestKey {
        let shape = &request.spec.shape;
        let canonical = format!(
            "arch={};kernel={};batch={};m={};n={};k={};seed={}",
            request.gpu.name,
            request.spec.kind.name(),
            shape.batch,
            shape.m,
            shape.n,
            shape.k,
            request.seed
        );
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        RequestKey {
            arch: request.gpu.name.clone(),
            kernel: request.spec.kind.name().to_string(),
            digest: format!("{hash:016x}"),
            canonical,
        }
    }

    /// File-name stem of this key's store entry (and training checkpoint).
    #[must_use]
    pub fn file_stem(&self) -> String {
        format!("{}_{}_{}", self.arch, self.kernel, self.digest)
    }
}

/// A successful optimization answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizeResult {
    /// Echo of the request's `protocol_version` — a v1 request gets a v1
    /// answer, byte-identical to what a v1 server produced.
    pub protocol_version: u32,
    /// Canonical architecture name the request resolved to.
    pub arch: String,
    /// Canonical kernel name the request resolved to.
    pub kernel: String,
    /// The request's store key digest (see [`RequestKey`]).
    pub request_key: String,
    /// Whether this answer came from the persistent schedule store rather
    /// than a fresh search.
    pub from_store: bool,
    /// Whether the search was preempted (deadline or drain) before its
    /// schedule completed: the report is the verified best-schedule-so-far,
    /// not the converged answer. The training checkpoint is persisted, so
    /// re-asking the same request later resumes the search and returns the
    /// full answer. Added after v1 shipped as `false` on old answers
    /// (additive, `#[serde(default)]`).
    #[serde(default)]
    pub degraded: bool,
    /// The optimization report, bit-identical to what a direct
    /// [`cuasmrl::SuiteOptimizer`] run produces for the same canonical
    /// request (unless `degraded`).
    pub report: OptimizationReport,
}

/// A status probe: `{"protocol_version": 2, "query": "status"}`. Detected
/// by its required `query` field (an optimize request has none), answered
/// at admission without touching the queue — so it works even when the
/// daemon is saturated or draining. Inside a v2 session, sent as a
/// [`RequestBody::Status`] tagged frame instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusRequest {
    /// [`PROTOCOL_VERSION`] or [`PROTOCOL_V1`]; echoed in the answer.
    pub protocol_version: u32,
    /// Must be `"status"` (room for future query kinds, additively).
    pub query: String,
}

impl StatusRequest {
    /// The status probe for the current protocol version.
    #[must_use]
    pub fn new() -> StatusRequest {
        StatusRequest {
            protocol_version: PROTOCOL_VERSION,
            query: "status".to_string(),
        }
    }

    /// Validates the probe.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::UnsupportedVersion`] on a version outside
    /// {1, 2} and [`ErrorCode::BadRequest`] on an unknown query kind.
    pub fn validate(&self) -> Result<(), ServiceError> {
        check_version(self.protocol_version)?;
        if self.query != "status" {
            return Err(ServiceError::new(
                ErrorCode::BadRequest,
                format!("unknown query kind {:?}", self.query),
            ));
        }
        Ok(())
    }
}

impl Default for StatusRequest {
    fn default() -> Self {
        StatusRequest::new()
    }
}

/// The answer to a [`StatusRequest`]: the daemon's live counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusResult {
    /// Echo of the probe's `protocol_version`.
    pub protocol_version: u32,
    /// Aggregate request counters since startup.
    pub stats: ServiceStats,
    /// Schedule-store counters since startup (entries in memory and on
    /// disk, LRU bytes, swept temp files — the saturation picture).
    pub store: StoreStats,
    /// Configured worker-thread count.
    pub workers: usize,
    /// Configured admission-queue depth.
    pub queue_capacity: usize,
    /// Requests currently waiting in the admission queue. Added in v2
    /// (additive, `#[serde(default)]`): with `queue_capacity`, the live
    /// saturation gauge.
    #[serde(default)]
    pub queue_depth: usize,
    /// Whether the daemon is draining (shutdown in progress: new work is
    /// answered `Busy`, in-flight searches are being preempted).
    pub draining: bool,
}

/// Error taxonomy of the service (see `docs/SERVICE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed frame/JSON, unknown kernel or architecture, bad shape.
    BadRequest,
    /// `protocol_version` outside the accepted set {1, 2}.
    UnsupportedVersion,
    /// Admission control rejected the request: the bounded queue is full.
    /// Retrying later is the expected client behavior; the error's
    /// `queue_depth` hint says how saturated the queue was.
    Busy,
    /// The request's deadline expired before a worker picked it up.
    DeadlineExceeded,
    /// Unexpected server-side failure.
    Internal,
}

/// A typed error answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Busy`]: how many requests were waiting in the
    /// admission queue when this one was rejected — the saturation hint an
    /// operator or backoff policy can act on without a status probe. Added
    /// in v2 (additive, `#[serde(default)]`): v1 errors decode as `None`,
    /// and non-`Busy` errors carry `None`.
    #[serde(default)]
    pub queue_depth: Option<usize>,
}

impl ServiceError {
    /// A typed error with no queue-depth hint.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            message: message.into(),
            queue_depth: None,
        }
    }

    /// Attaches the admission-queue saturation hint (`Busy` answers).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> ServiceError {
        self.queue_depth = Some(depth);
        self
    }

    fn bad_request(err: cuasmrl::cli::UnknownName) -> ServiceError {
        ServiceError::new(ErrorCode::BadRequest, err.to_string())
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// One response frame: a result, a status answer, or a typed error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum OptimizeResponse {
    /// The request was served.
    Ok(OptimizeResult),
    /// The status probe's answer (additive: only ever sent in reply to a
    /// [`StatusRequest`], so v1 optimize clients never see it).
    Status(StatusResult),
    /// The request was rejected or failed; see the [`ErrorCode`].
    Err(ServiceError),
}

/// The body of a tagged (v2 session) request frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestBody {
    /// A kernel-optimization request.
    Optimize(OptimizeRequest),
    /// A status probe.
    Status(StatusRequest),
}

/// A v2 session request frame: `{"request_id": N, "body": {...}}`.
///
/// `request_id` is chosen by the client and echoed verbatim in the
/// matching [`TaggedResponse`] — it is how pipelined responses are routed,
/// so a client must not reuse an id while its request is in flight. Ids
/// must start at 1 ([`UNATTRIBUTED_REQUEST_ID`] is reserved for server
/// errors about frames whose id could not be salvaged).
///
/// The first tagged frame on a connection is also the version sniff: a
/// first frame that decodes as a `TaggedRequest` opens a persistent
/// pipelined session; one that decodes as a bare request gets the v1
/// single-exchange treatment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaggedRequest {
    /// Client-chosen correlation id, echoed in the response. Must be ≥ 1.
    pub request_id: u64,
    /// The request itself.
    pub body: RequestBody,
}

/// A v2 session response frame: the `request_id` of the request it
/// answers, plus the same [`OptimizeResponse`] a v1 exchange would carry.
/// Responses may arrive in any order; the id is the only correlation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaggedResponse {
    /// Echo of the request's `request_id`
    /// ([`UNATTRIBUTED_REQUEST_ID`] when the offending frame's id could
    /// not be salvaged).
    pub request_id: u64,
    /// The answer.
    pub response: OptimizeResponse,
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns an IO error on a short write, or `InvalidData` when the payload
/// exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|len| *len <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
            )
        })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Returns an IO error on a short read, or `InvalidData` when the length
/// prefix exceeds [`MAX_FRAME_LEN`] (the payload is not read in that case).
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// What one poll of a persistent connection's read side produced (see
/// [`poll_frame`]).
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame.
    Frame(Vec<u8>),
    /// No frame started before the idle timeout — check your exit
    /// conditions and poll again.
    Idle,
    /// The peer closed the connection at a frame boundary.
    Closed,
}

/// Reads one frame from a persistent connection with two timescales: a
/// short `idle_poll` before the first byte (so session loops notice
/// shutdown/drain/close promptly without ever splitting a frame), then the
/// full `frame_budget` once a frame has started. This is the read
/// primitive of both the server's session loop and the client's response
/// demultiplexer.
///
/// # Errors
///
/// Returns an IO error when a started frame stays unfinished past the
/// budget, the peer disconnects mid-frame, or the length prefix exceeds
/// [`MAX_FRAME_LEN`] — framing damage, which is connection-fatal (unlike
/// payload damage, which the server scopes to one `request_id`).
pub fn poll_frame(
    stream: &mut std::net::TcpStream,
    idle_poll: std::time::Duration,
    frame_budget: std::time::Duration,
) -> io::Result<FrameRead> {
    stream.set_read_timeout(Some(idle_poll))?;
    let mut first = [0u8; 1];
    match stream.read(&mut first) {
        Ok(0) => return Ok(FrameRead::Closed),
        Ok(_) => {}
        Err(err)
            if matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            return Ok(FrameRead::Idle)
        }
        Err(err) => return Err(err),
    }
    stream.set_read_timeout(Some(frame_budget))?;
    let mut rest = [0u8; 3];
    stream.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults { scale: 16, seed: 7 }
    }

    #[test]
    fn frames_round_trip_and_oversized_frames_are_refused() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        assert_eq!(&buffer[..4], &5u32.to_be_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");

        let mut oversized = Vec::from((MAX_FRAME_LEN + 1).to_be_bytes());
        oversized.extend_from_slice(b"x");
        let err = read_frame(&mut io::Cursor::new(oversized)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn canonicalization_folds_aliases_into_one_key() {
        let a = OptimizeRequest::table2("softmax", "a100")
            .canonicalize(&defaults())
            .unwrap();
        let b = OptimizeRequest::table2("SOFTMAX", "Ampere")
            .canonicalize(&defaults())
            .unwrap();
        assert_eq!(RequestKey::of(&a), RequestKey::of(&b));
        assert_eq!(a.spec, KernelSpec::scaled(kernels::KernelKind::Softmax, 16));
        assert_eq!(a.seed, 7);
        // Explicit knobs reach the key: different seed, different entry.
        let mut custom = OptimizeRequest::table2("softmax", "a100");
        custom.seed = Some(8);
        let c = custom.canonicalize(&defaults()).unwrap();
        assert_ne!(RequestKey::of(&a).digest, RequestKey::of(&c).digest);
        assert!(RequestKey::of(&a).file_stem().contains("softmax"));
    }

    #[test]
    fn priority_and_deadline_shape_ordering_but_never_the_canonical_key() {
        let plain = OptimizeRequest::table2("softmax", "a100");
        let mut urgent = plain.clone();
        urgent.priority = Some(50);
        urgent.deadline_ms = Some(2_000);
        let a = plain.canonicalize(&defaults()).unwrap();
        let b = urgent.canonicalize(&defaults()).unwrap();
        assert_eq!(
            RequestKey::of(&a),
            RequestKey::of(&b),
            "priority/deadline must not change what is computed"
        );
        assert_ne!(plain.rank(), urgent.rank());
    }

    #[test]
    fn canonicalization_rejects_bad_requests_with_typed_errors() {
        let mut wrong_version = OptimizeRequest::table2("softmax", "ampere");
        wrong_version.protocol_version = 99;
        assert_eq!(
            wrong_version.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::UnsupportedVersion
        );
        let unknown_kernel = OptimizeRequest::table2("conv3d", "ampere");
        let err = unknown_kernel.canonicalize(&defaults()).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("conv3d"));
        let unknown_arch = OptimizeRequest::table2("softmax", "pascal");
        assert_eq!(
            unknown_arch.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::BadRequest
        );
        let mut degenerate = OptimizeRequest::table2("softmax", "ampere");
        degenerate.shape = Some(ProblemShape {
            batch: 1,
            m: 0,
            n: 64,
            k: 1,
        });
        assert_eq!(
            degenerate.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn both_wire_versions_canonicalize_and_others_are_refused() {
        let mut request = OptimizeRequest::table2("softmax", "ampere");
        assert_eq!(request.protocol_version, PROTOCOL_VERSION);
        assert!(request.canonicalize(&defaults()).is_ok());
        request.protocol_version = PROTOCOL_V1;
        assert!(request.canonicalize(&defaults()).is_ok(), "v1 still speaks");
        for version in [0, 3, 99] {
            request.protocol_version = version;
            assert_eq!(
                request.canonicalize(&defaults()).unwrap_err().code,
                ErrorCode::UnsupportedVersion
            );
        }
    }

    #[test]
    fn absurd_deadlines_are_rejected_at_decode() {
        let mut request = OptimizeRequest::table2("softmax", "ampere");
        request.deadline_ms = Some(MAX_DEADLINE_MS);
        assert!(request.canonicalize(&defaults()).is_ok());
        request.deadline_ms = Some(MAX_DEADLINE_MS + 1);
        let err = request.canonicalize(&defaults()).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("deadline_ms"));
        request.deadline_ms = Some(u64::MAX);
        assert_eq!(
            request.canonicalize(&defaults()).unwrap_err().code,
            ErrorCode::BadRequest
        );
        // Zero stays legal: it is the admission-control probe.
        request.deadline_ms = Some(0);
        assert!(request.canonicalize(&defaults()).is_ok());
    }

    #[test]
    fn admission_ranks_order_deadlines_first_and_priority_biases_additively() {
        // Tighter deadline, earlier rank; no deadline ranks behind every
        // deadlined request.
        assert!(admission_rank(Some(100), None) < admission_rank(Some(5_000), None));
        assert!(admission_rank(Some(MAX_DEADLINE_MS), None) < admission_rank(None, None));
        assert_eq!(admission_rank(None, None), NO_DEADLINE_RANK_MS);
        // One unit of priority is worth exactly PRIORITY_BIAS_MS of
        // deadline; negative priority deprioritizes.
        assert_eq!(
            admission_rank(Some(5_000), Some(3)),
            admission_rank(Some(5_000 - 3 * PRIORITY_BIAS_MS as u64), None)
        );
        assert!(admission_rank(None, Some(1)) < admission_rank(None, None));
        assert!(admission_rank(None, Some(-1)) > admission_rank(None, None));
        // A high-priority no-deadline request can outrank a deadlined one —
        // priority is a real bias, not a secondary key.
        assert!(admission_rank(None, Some(i32::MAX)) < admission_rank(Some(0), None));
        // Extreme priorities never overflow.
        let _ = admission_rank(Some(MAX_DEADLINE_MS), Some(i32::MIN));
        let _ = admission_rank(Some(0), Some(i32::MAX));
    }

    #[test]
    fn every_error_code_round_trips_through_the_wire_form() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Busy,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
        ] {
            let error = ServiceError::new(code, format!("probe for {code:?}"));
            let json = serde_json::to_string(&OptimizeResponse::Err(error.clone())).unwrap();
            let decoded: OptimizeResponse = serde_json::from_str(&json).unwrap();
            let OptimizeResponse::Err(back) = decoded else {
                panic!("expected an error response, got {json}");
            };
            assert_eq!(back, error);
        }
        // The queue-depth hint survives the round trip too.
        let busy = ServiceError::new(ErrorCode::Busy, "full").with_queue_depth(17);
        let json = serde_json::to_string(&busy).unwrap();
        let back: ServiceError = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queue_depth, Some(17));
    }

    #[test]
    fn v1_errors_without_a_queue_depth_still_decode() {
        // A v1 server's error had no `queue_depth` field; the hint is
        // additive (same pattern as `degraded` on results).
        let json = r#"{"code": "Busy", "message": "admission queue is full"}"#;
        let error: ServiceError = serde_json::from_str(json).unwrap();
        assert_eq!(error.code, ErrorCode::Busy);
        assert_eq!(error.queue_depth, None);
    }

    #[test]
    fn status_requests_are_distinguishable_from_optimize_requests() {
        // The status probe decodes as a StatusRequest but not as an
        // OptimizeRequest, and vice versa — `query` is the discriminant.
        let probe = serde_json::to_string(&StatusRequest::new()).unwrap();
        let decoded: StatusRequest = serde_json::from_str(&probe).unwrap();
        assert!(decoded.validate().is_ok());
        assert!(serde_json::from_str::<OptimizeRequest>(&probe).is_err());

        let optimize = serde_json::to_string(&OptimizeRequest::table2("bmm", "ampere")).unwrap();
        assert!(serde_json::from_str::<StatusRequest>(&optimize).is_err());

        let mut stale = StatusRequest::new();
        stale.protocol_version = 99;
        assert_eq!(
            stale.validate().unwrap_err().code,
            ErrorCode::UnsupportedVersion
        );
        let mut v1 = StatusRequest::new();
        v1.protocol_version = PROTOCOL_V1;
        assert!(v1.validate().is_ok(), "v1 probes still validate");
        let mut unknown = StatusRequest::new();
        unknown.query = "metrics".to_string();
        assert_eq!(unknown.validate().unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn tagged_frames_are_distinguishable_from_bare_frames() {
        // The version sniff: a tagged frame decodes as a TaggedRequest and
        // as neither bare request; a bare frame decodes as its request and
        // never as a TaggedRequest.
        let tagged = TaggedRequest {
            request_id: 1,
            body: RequestBody::Optimize(OptimizeRequest::table2("softmax", "ampere")),
        };
        let json = serde_json::to_string(&tagged).unwrap();
        let back: TaggedRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tagged);
        assert!(serde_json::from_str::<OptimizeRequest>(&json).is_err());
        assert!(serde_json::from_str::<StatusRequest>(&json).is_err());

        let bare = serde_json::to_string(&OptimizeRequest::table2("bmm", "ampere")).unwrap();
        assert!(serde_json::from_str::<TaggedRequest>(&bare).is_err());
        let probe = serde_json::to_string(&StatusRequest::new()).unwrap();
        assert!(serde_json::from_str::<TaggedRequest>(&probe).is_err());

        // Status probes ride sessions as tagged bodies.
        let tagged_probe = TaggedRequest {
            request_id: 2,
            body: RequestBody::Status(StatusRequest::new()),
        };
        let json = serde_json::to_string(&tagged_probe).unwrap();
        let back: TaggedRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tagged_probe);
    }

    #[test]
    fn tagged_responses_round_trip_with_their_request_id() {
        let response = TaggedResponse {
            request_id: 42,
            response: OptimizeResponse::Err(
                ServiceError::new(ErrorCode::Busy, "queue full").with_queue_depth(3),
            ),
        };
        let json = serde_json::to_string(&response).unwrap();
        let back: TaggedResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.request_id, 42);
        let OptimizeResponse::Err(error) = back.response else {
            panic!("expected the error to survive");
        };
        assert_eq!(error.code, ErrorCode::Busy);
        assert_eq!(error.queue_depth, Some(3));
    }

    #[test]
    fn degraded_defaults_to_false_on_pre_preemption_answers() {
        // A v1 answer written before the `degraded` field existed must still
        // decode (additive change).
        let json = r#"{
            "protocol_version": 1,
            "arch": "ampere",
            "kernel": "softmax",
            "request_key": "00000000deadbeef",
            "from_store": true,
            "report": {
                "kernel": "softmax",
                "baseline_us": 10.0,
                "optimized_us": 10.0,
                "speedup": 1.0,
                "verified": true,
                "optimized_listing": "",
                "moves": []
            }
        }"#;
        let result: OptimizeResult = serde_json::from_str(json).unwrap();
        assert!(!result.degraded);
    }

    #[test]
    fn priority_defaults_to_none_on_v1_request_literals() {
        // The exact JSON a v1 client sends — no `priority` field — must
        // decode with `priority: None` (additive, mirroring `degraded`).
        let request: OptimizeRequest = serde_json::from_str(
            r#"{"protocol_version": 1, "kernel": "softmax", "arch": "ampere",
                "shape": null, "scale": null, "seed": 3, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(request.priority, None);
        assert_eq!(request.seed, Some(3));
        assert_eq!(request.deadline_ms, Some(250));
        assert!(request.canonicalize(&defaults()).is_ok());
    }

    #[test]
    fn status_results_decode_pre_durability_literals_without_new_counters() {
        // The exact JSON a pre-durability-v2 daemon serializes: no
        // `checksum_failures` in the service stats, none of the journal
        // counters in the store stats. All the new fields are additive
        // (`#[serde(default)]`) and must decode as zero.
        let json = r#"{
            "protocol_version": 2,
            "stats": {
                "requests": 7, "store_hits": 4, "computed": 3, "busy": 0,
                "rejected": 1, "deadline_expired": 0, "preempted": 0,
                "degraded": 0, "worker_panics": 0, "status_served": 2,
                "injected_faults": 0
            },
            "store": {
                "hits": 4, "misses": 3, "disk_hits": 1,
                "entries_in_memory": 3, "skipped_at_open": 0, "tmp_swept": 0
            },
            "workers": 2,
            "queue_capacity": 16,
            "queue_depth": 0,
            "draining": false
        }"#;
        let status: StatusResult = serde_json::from_str(json).unwrap();
        assert_eq!(status.stats.requests, 7);
        assert_eq!(status.stats.checksum_failures, 0);
        assert_eq!(status.store.hits, 4);
        assert_eq!(status.store.checksum_failures, 0);
        assert_eq!(status.store.journal_replayed, 0);
        assert_eq!(status.store.journal_torn, 0);
        assert_eq!(status.store.generation, 0);
        assert_eq!(status.store.lru_bytes, 0);
    }

    #[test]
    fn minimal_request_json_decodes_with_defaults() {
        let request: OptimizeRequest =
            serde_json::from_str(r#"{"protocol_version": 2, "kernel": "bmm", "arch": "hopper"}"#)
                .unwrap();
        assert_eq!(request, OptimizeRequest::table2("bmm", "hopper"));
        let canonical = request.canonicalize(&defaults()).unwrap();
        assert_eq!(
            canonical.gpu.name,
            cuasmrl::cli::resolve_arch("hopper").unwrap().name
        );
    }
}
