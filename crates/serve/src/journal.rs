//! The store's checksummed append-only write-ahead journal.
//!
//! Every durable-set mutation ([`crate::ScheduleStore::put`] /
//! [`crate::ScheduleStore::remove`]) is appended here — fsynced — *before*
//! the per-entry JSON file is touched. A kill at any later boundary is
//! therefore recoverable: replay on the next open rewrites whatever the
//! crash interrupted, and a kill *during* the append itself leaves a torn
//! tail that truncates away, making the interrupted mutation absent. The
//! guarantee is always pre-write or post-write bytes, never a third state.
//!
//! ## On-disk format (`journal.wal`)
//!
//! | bytes | field |
//! |---|---|
//! | 8 | magic `CASRLWAL` |
//! | 4 | format version, u32 LE ([`JOURNAL_FORMAT_VERSION`]) |
//! | 8 | generation, u64 LE (bumped on every rotation) |
//! | per record: 4 | payload length, u32 LE |
//! | per record: n | payload — JSON of one [`JournalOp`] |
//! | per record: 8 | FNV-1a-64 of the payload, u64 LE (the `rl::Checkpoint` trailer style) |
//!
//! Replay walks records until the first anomaly (short length word, short
//! payload, checksum mismatch, undecodable JSON) and reports everything
//! after it as the torn tail. Because appends are strictly ordered before
//! the entry-file writes they cover, a torn tail can only be the single
//! mutation in flight at the kill.
//!
//! Entries are eagerly compacted into their per-entry JSON files at put
//! time, so journal records go redundant quickly; rotation (an atomic
//! temp+rename of a fresh header at generation+1) retires them. The store
//! rotates on every open and every [`crate::ScheduleStore::compact`], and
//! automatically every [`crate::ScheduleStore::JOURNAL_ROTATE_EVERY`]
//! appends.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::io::StoreIo;
use crate::store::StoreEntry;

/// File name of the journal inside a store directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Leading magic of a journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"CASRLWAL";

/// Version of the journal's binary layout. Bumped on any layout change;
/// another version is treated as a damaged header (the journal is
/// evidence, not truth — entry files survive it).
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Upper bound on one record's payload, mirroring the wire protocol's
/// frame cap: a length word beyond this is torn-tail garbage, not a real
/// record.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

const HEADER_LEN: usize = 8 + 4 + 8;

/// FNV-1a-64 (the same constants as `rl::Checkpoint` and
/// [`crate::RequestKey`]).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One journaled durable-set mutation.
// Boxing `entry` would shrink the enum, but the vendored serde shim has no
// `Box` impls; ops are short-lived (append, replay) so the size is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalOp {
    /// An entry was (about to be) written to `{stem}.json`.
    Put {
        /// The entry's file stem ([`crate::RequestKey::file_stem`]).
        stem: String,
        /// The full entry, so replay can rewrite the file byte-identically.
        entry: StoreEntry,
    },
    /// The entry at `{stem}.json` was (about to be) removed.
    Remove {
        /// The entry's file stem.
        stem: String,
    },
}

impl JournalOp {
    /// The file stem this mutation targets.
    #[must_use]
    pub fn stem(&self) -> &str {
        match self {
            JournalOp::Put { stem, .. } | JournalOp::Remove { stem } => stem,
        }
    }
}

/// What replaying a journal found.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Generation recorded in the header (0 when the file was absent or
    /// its header was damaged).
    pub generation: u64,
    /// The valid records, in append order.
    pub ops: Vec<JournalOp>,
    /// Whether a torn tail (or mid-file damage) was truncated away.
    pub torn_tail: bool,
    /// Whether the header itself was unreadable (wrong magic/version or
    /// short file) — the whole file is then treated as evidence-free.
    pub damaged_header: bool,
}

/// The append side of the journal. Owned by the store (under its inner
/// mutex), so appends are strictly ordered with the mutations they cover.
pub struct Journal {
    path: PathBuf,
    temp_path: PathBuf,
    io: Arc<dyn StoreIo>,
    generation: u64,
    appends_since_rotate: u64,
}

impl Journal {
    /// Opens the journal inside `dir`, replaying whatever is on disk. Does
    /// not create or truncate anything — the caller applies the replay and
    /// then calls [`Journal::rotate`], which is what establishes the fresh
    /// file.
    ///
    /// # Errors
    ///
    /// Propagates real filesystem errors; a missing journal is not an
    /// error (first boot), and a damaged one is reported in the
    /// [`JournalReplay`], not thrown.
    pub fn open(dir: &Path, io: Arc<dyn StoreIo>) -> io::Result<(Journal, JournalReplay)> {
        let path = dir.join(JOURNAL_FILE);
        let replay = match io.read(&path) {
            Ok(bytes) => decode(&bytes),
            Err(err) if err.kind() == io::ErrorKind::NotFound => JournalReplay::default(),
            Err(err) => return Err(err),
        };
        let journal = Journal {
            temp_path: dir.join(format!(".{JOURNAL_FILE}.tmp.{}", std::process::id())),
            path,
            io,
            generation: replay.generation,
            appends_since_rotate: 0,
        };
        Ok((journal, replay))
    }

    /// The current generation (what new entries are stamped with).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records appended since the last rotation.
    #[must_use]
    pub fn appends_since_rotate(&self) -> u64 {
        self.appends_since_rotate
    }

    /// Appends one record, fsynced. This is the write-ahead step: it MUST
    /// complete before the entry file it covers is touched.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error; the caller must then abandon the
    /// covered mutation (the record may be torn, which replay truncates).
    pub fn append(&mut self, op: &JournalOp) -> io::Result<()> {
        let payload = serde_json::to_string(op)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?
            .into_bytes();
        let mut record = Vec::with_capacity(4 + payload.len() + 8);
        record.extend_from_slice(
            &u32::try_from(payload.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "record too large"))?
                .to_le_bytes(),
        );
        record.extend_from_slice(&payload);
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        self.io.append(&self.path, &record)?;
        self.appends_since_rotate += 1;
        Ok(())
    }

    /// Atomically replaces the journal with a fresh, empty one at
    /// generation+1. Only safe once every record is compacted into its
    /// per-entry file — which the store guarantees by writing entry files
    /// eagerly at put time.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error. A crash before the rename leaves
    /// the old journal (replay stays idempotent); after it, the fresh one.
    pub fn rotate(&mut self) -> io::Result<()> {
        let next = self.generation + 1;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&next.to_le_bytes());
        self.io.write(&self.temp_path, &header)?;
        self.io.rename(&self.temp_path, &self.path)?;
        self.generation = next;
        self.appends_since_rotate = 0;
        Ok(())
    }
}

/// Decodes a journal image: header, then records until the first anomaly.
#[must_use]
pub fn decode(bytes: &[u8]) -> JournalReplay {
    let mut replay = JournalReplay::default();
    if bytes.len() < HEADER_LEN
        || bytes[..8] != JOURNAL_MAGIC
        || u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) != JOURNAL_FORMAT_VERSION
    {
        replay.damaged_header = true;
        return replay;
    }
    replay.generation = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let mut offset = HEADER_LEN;
    while offset < bytes.len() {
        let Some(len_word) = bytes.get(offset..offset + 4) else {
            replay.torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes([len_word[0], len_word[1], len_word[2], len_word[3]]);
        if len > MAX_RECORD_LEN {
            replay.torn_tail = true;
            break;
        }
        let len = len as usize;
        let Some(payload) = bytes.get(offset + 4..offset + 4 + len) else {
            replay.torn_tail = true;
            break;
        };
        let Some(trailer) = bytes.get(offset + 4 + len..offset + 4 + len + 8) else {
            replay.torn_tail = true;
            break;
        };
        let recorded = u64::from_le_bytes([
            trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
            trailer[7],
        ]);
        if recorded != fnv1a64(payload) {
            replay.torn_tail = true;
            break;
        }
        let Ok(op) = std::str::from_utf8(payload)
            .map_err(|_| ())
            .and_then(|text| serde_json::from_str::<JournalOp>(text).map_err(|_| ()))
        else {
            replay.torn_tail = true;
            break;
        };
        replay.ops.push(op);
        offset += 4 + len + 8;
    }
    replay
}

/// Encodes a header + records image (the inverse of [`decode`]; used by
/// fsck repair to truncate a torn tail and by the tests).
#[must_use]
pub fn encode(generation: u64, ops: &[JournalOp]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN);
    bytes.extend_from_slice(&JOURNAL_MAGIC);
    bytes.extend_from_slice(&JOURNAL_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&generation.to_le_bytes());
    for op in ops {
        let payload = serde_json::to_string(op).unwrap_or_default().into_bytes();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{StoreEntry, STORE_SCHEMA_VERSION};
    use proptest::prelude::*;

    fn entry(stem: &str, seed: u64) -> StoreEntry {
        StoreEntry {
            schema_version: STORE_SCHEMA_VERSION,
            canonical: format!("canonical-{stem}"),
            arch: "ampere".to_string(),
            kernel: stem.to_string(),
            seed,
            generation: 0,
            checksum: String::new(),
            report: cuasmrl::OptimizationReport {
                kernel: stem.to_string(),
                baseline_us: 10.0,
                optimized_us: 8.0,
                speedup: 1.25,
                verified: true,
                optimized_listing: String::new(),
                moves: Vec::new(),
            },
        }
        .seal()
    }

    fn ops_fixture(count: u64) -> Vec<JournalOp> {
        (0..count)
            .map(|i| {
                if i % 3 == 2 {
                    JournalOp::Remove {
                        stem: format!("k{}", i / 3),
                    }
                } else {
                    JournalOp::Put {
                        stem: format!("k{i}"),
                        entry: entry(&format!("k{i}"), i),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn records_round_trip_through_encode_decode() {
        let ops = ops_fixture(7);
        let image = encode(3, &ops);
        let replay = decode(&image);
        assert_eq!(replay.generation, 3);
        assert_eq!(replay.ops.len(), 7);
        assert!(!replay.torn_tail && !replay.damaged_header);
        for (original, decoded) in ops.iter().zip(&replay.ops) {
            assert_eq!(original.stem(), decoded.stem());
        }
    }

    #[test]
    fn a_damaged_header_yields_no_evidence() {
        assert!(decode(b"short").damaged_header);
        let mut image = encode(1, &ops_fixture(2));
        image[0] ^= 0xFF;
        let replay = decode(&image);
        assert!(replay.damaged_header);
        assert!(replay.ops.is_empty());
    }

    #[test]
    fn torn_tails_truncate_to_the_longest_valid_prefix() {
        let ops = ops_fixture(4);
        let image = encode(2, &ops);
        // Chop mid-way through the last record.
        let torn = &image[..image.len() - 5];
        let replay = decode(torn);
        assert_eq!(replay.generation, 2);
        assert_eq!(replay.ops.len(), 3, "the in-flight record is absent");
        assert!(replay.torn_tail);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Any truncation point yields a valid prefix of the appended
        // records — never a phantom record, never a panic. This is the
        // crash model: a kill mid-append leaves an arbitrary prefix.
        #[test]
        fn replay_of_any_truncation_is_a_valid_prefix(
            count in 1u64..6,
            cut_back in 0usize..64,
        ) {
            let ops = ops_fixture(count);
            let image = encode(1, &ops);
            let cut = image.len().saturating_sub(cut_back);
            let replay = decode(&image[..cut]);
            if !replay.damaged_header {
                prop_assert!(replay.ops.len() <= ops.len());
                for (original, decoded) in ops.iter().zip(&replay.ops) {
                    prop_assert_eq!(original.stem(), decoded.stem());
                }
                // Anything dropped is flagged, never silent.
                if replay.ops.len() < ops.len() {
                    prop_assert!(replay.torn_tail);
                }
            }
        }

        // A single flipped byte anywhere in the record region is caught by
        // the per-record checksum: replay stops at (or before) the damaged
        // record and flags it.
        #[test]
        fn replay_of_any_single_byte_flip_never_invents_records(
            count in 1u64..5,
            position in 0usize..512,
            flip in 1u8..255,
        ) {
            let ops = ops_fixture(count);
            let mut image = encode(1, &ops);
            let position = HEADER_LEN + position % (image.len() - HEADER_LEN);
            image[position] ^= flip;
            let replay = decode(&image);
            prop_assert!(!replay.damaged_header);
            // The flip strikes exactly one record; the per-record checksum
            // stops replay there, so the damaged record and everything
            // after it are dropped — and what survives is the untouched
            // prefix, never a reinterpretation.
            prop_assert!(replay.ops.len() < ops.len());
            prop_assert!(replay.torn_tail);
            for (original, decoded) in ops.iter().zip(&replay.ops) {
                prop_assert_eq!(original.stem(), decoded.stem());
            }
        }
    }
}
