//! The `cuasmrld` daemon binary: parse flags, start the server, publish
//! the bound address, and serve until a termination signal triggers a
//! graceful drain. See `docs/SERVICE.md` for the operations runbook.

use std::path::PathBuf;
use std::process::ExitCode;

use cuasmrl::Strategy;
use cuasmrld::{FaultPlan, Server, ServerConfig};
use gpusim::MeasureOptions;

const USAGE: &str = "\
USAGE: cuasmrld --store-dir DIR [OPTIONS]

OPTIONS:
  --store-dir DIR          schedule-store root (required)
  --addr HOST:PORT         bind address (default 127.0.0.1:8591; port 0 = ephemeral)
  --addr-file PATH         write the bound address to PATH once listening
  --workers N              worker threads (default 2; 0 = accept-only)
  --queue N                admission-queue depth (default 32)
  --store-cap N            in-memory store entries (default 64)
  --strategy NAME          greedy | rl | rl-tiny (default greedy)
  --seed N                 default base seed (default 0)
  --scale N                default paper-shape divisor (default 1)
  --checkpoint-updates N   PPO updates between checkpoints (default 1)
  --fault-plan PATH        JSON fault-injection plan (chaos testing only)
  --fast                   fast simulation settings (CI smoke): scale 16,
                           zero-noise 2-repeat measurements, short episodes

SIGTERM or SIGINT triggers a graceful drain: stop accepting, answer queued
work Busy, preempt in-flight searches (checkpoints persist), flush
telemetry, exit 0.
";

fn parse(args: &[String]) -> Result<(ServerConfig, Option<PathBuf>), String> {
    let mut store_dir: Option<PathBuf> = None;
    let mut config = ServerConfig::new("");
    config.addr = "127.0.0.1:8591".to_string();
    let mut addr_file: Option<PathBuf> = None;
    let mut fast = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--store-dir" => store_dir = Some(PathBuf::from(value("--store-dir")?)),
            "--addr" => config.addr = value("--addr")?,
            "--addr-file" => addr_file = Some(PathBuf::from(value("--addr-file")?)),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?;
            }
            "--store-cap" => {
                config.store_capacity = value("--store-cap")?
                    .parse()
                    .map_err(|_| "--store-cap must be an integer".to_string())?;
            }
            "--strategy" => {
                config.strategy = match value("--strategy")?.as_str() {
                    "greedy" => Strategy::Greedy { max_moves: 8 },
                    "rl" => Strategy::Rl(rl::PpoConfig::default()),
                    "rl-tiny" => Strategy::Rl(rl::PpoConfig::tiny()),
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--scale" => {
                config.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale must be an integer".to_string())?;
            }
            "--checkpoint-updates" => {
                config.checkpoint_updates = value("--checkpoint-updates")?
                    .parse()
                    .map_err(|_| "--checkpoint-updates must be an integer".to_string())?;
            }
            "--fault-plan" => {
                let path = PathBuf::from(value("--fault-plan")?);
                let plan = FaultPlan::from_file(&path)
                    .map_err(|err| format!("--fault-plan {}: {err}", path.display()))?;
                config.fault_plan = Some(plan);
            }
            "--fast" => fast = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    config.store_dir = store_dir.ok_or_else(|| "--store-dir is required".to_string())?;
    if fast {
        let fast_measure = MeasureOptions {
            warmup: 0,
            repeats: 2,
            noise_std: 0.0,
            seed: 0,
        };
        config.scale = 16;
        config.tune_options = fast_measure.clone();
        config.game_config = cuasmrl::GameConfig {
            episode_length: 8,
            measure: fast_measure,
            ..cuasmrl::GameConfig::default()
        };
    }
    Ok((config, addr_file))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, addr_file) = match parse(&args) {
        Ok(config) => config,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("cuasmrld: {message}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cuasmrld: failed to start: {err}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("cuasmrld listening on {addr}");
    if let Some(path) = addr_file {
        // Temp + rename so pollers never observe a half-written file.
        let temp = path.with_extension("tmp");
        if std::fs::write(&temp, addr.to_string())
            .and_then(|()| std::fs::rename(&temp, &path))
            .is_err()
        {
            eprintln!("cuasmrld: failed to write addr file {}", path.display());
        }
    }
    // Serve until a termination signal, then drain: stop accepting, answer
    // queued work Busy, preempt in-flight searches (their checkpoints
    // persist), flush telemetry. The store and checkpoints make the next
    // start a warm restart that completes the same answers byte-identically.
    if !sigshim::install_term_flag() {
        eprintln!("cuasmrld: no signal handler on this platform; drain only on kill");
    }
    while !sigshim::term_requested() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    eprintln!("cuasmrld: termination signal received; draining");
    let stats = server.shutdown();
    eprintln!(
        "cuasmrld: drained (served {} requests, {} preempted, {} panics isolated)",
        stats.requests, stats.preempted, stats.worker_panics
    );
    ExitCode::SUCCESS
}
