//! `cuasmrld-fsck`: offline verify/repair for a `cuasmrld` store directory.
//!
//! Walks a (cold) store directory, prints a stable JSON [`FsckReport`]
//! with a per-file verdict (ok / torn / corrupt / orphaned /
//! stale-generation) plus journal health, and — with `--repair` —
//! quarantines damage, rewrites entries from their journal records, and
//! truncates a torn journal tail.
//!
//! Exit codes: `0` healthy (without `--repair`: everything ok; with it:
//! nothing unrepairable), `1` unhealthy, `2` usage or I/O failure.
//! `docs/SERVICE.md` documents the verdict taxonomy and the runbook.

use std::path::PathBuf;
use std::process::ExitCode;

use cuasmrld::fsck::{fsck, FsckReport};

const USAGE: &str = "\
USAGE: cuasmrld-fsck --store-dir PATH [OPTIONS]

OPTIONS:
  --store-dir PATH     the store directory to walk (required; the daemon
                       must not be running against it)
  --repair             quarantine damaged files, rewrite entries from
                       their journal records, truncate a torn journal tail
  --out PATH           also write the JSON report to PATH
";

struct Args {
    store_dir: PathBuf,
    repair: bool,
    out: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut store_dir = None;
    let mut repair = false;
    let mut out = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--store-dir" => store_dir = Some(PathBuf::from(value("--store-dir")?)),
            "--repair" => repair = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let store_dir = store_dir.ok_or_else(|| "--store-dir is required".to_string())?;
    Ok(Args {
        store_dir,
        repair,
        out,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("cuasmrld-fsck: {message}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report: FsckReport = match fsck(&args.store_dir, args.repair) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "cuasmrld-fsck: cannot walk {}: {err}",
                args.store_dir.display()
            );
            return ExitCode::from(2);
        }
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    if let Some(path) = &args.out {
        if std::fs::write(path, &json).is_err() {
            eprintln!("cuasmrld-fsck: failed to write {}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.healthy() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
