//! `cuasmrld-bench`: the deterministic load generator. Drives N concurrent
//! synthetic clients through a cold round plus warm repeat rounds against
//! a running daemon, prints the outcome report as JSON, and fails (exit 1)
//! when any request fails or the warm-phase store-hit rate falls below
//! `--min-hit-rate` — the assertion CI's service-smoke job runs.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use cuasmrld::{run_load, LoadSpec};

const USAGE: &str = "\
USAGE: cuasmrld-bench (--addr HOST:PORT | --addr-file PATH) [OPTIONS]

OPTIONS:
  --addr HOST:PORT     daemon address
  --addr-file PATH     read the address from PATH (poll up to 30 s)
  --clients N          concurrent clients (default 2)
  --kernels A,B,...    kernel names (default: all Table-2 kernels)
  --arch NAME          architecture (default ampere)
  --scale N            paper-shape divisor (default 16)
  --seed N             base seed carried in every request (default 0)
  --rounds N           warm repeat rounds (default 2)
  --pipeline N         in-flight requests per client over one persistent
                       v2 connection (default 0 = one connection per request)
  --min-hit-rate F     minimum warm-phase store-hit rate in [0,1] (default 0.99)
  --verify-store       fail (exit 1) if the daemon reports any checksum
                       failures or journal replays after the run — the
                       durability assertion for a clean (fault-free) burst
  --out PATH           also write the JSON report to PATH
";

struct Args {
    addr: Option<String>,
    addr_file: Option<PathBuf>,
    spec: LoadSpec,
    min_hit_rate: f64,
    verify_store: bool,
    out: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        addr: None,
        addr_file: None,
        spec: LoadSpec::smoke("ampere"),
        min_hit_rate: 0.99,
        verify_store: false,
        out: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--addr-file" => parsed.addr_file = Some(PathBuf::from(value("--addr-file")?)),
            "--clients" => {
                parsed.spec.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients must be an integer".to_string())?;
            }
            "--kernels" => {
                parsed.spec.kernels = value("--kernels")?.split(',').map(str::to_string).collect();
            }
            "--arch" => parsed.spec.arch = value("--arch")?,
            "--scale" => {
                parsed.spec.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale must be an integer".to_string())?;
            }
            "--seed" => {
                parsed.spec.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--rounds" => {
                parsed.spec.repeat_rounds = value("--rounds")?
                    .parse()
                    .map_err(|_| "--rounds must be an integer".to_string())?;
            }
            "--pipeline" => {
                parsed.spec.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|_| "--pipeline must be an integer".to_string())?;
            }
            "--min-hit-rate" => {
                parsed.min_hit_rate = value("--min-hit-rate")?
                    .parse()
                    .map_err(|_| "--min-hit-rate must be a number".to_string())?;
            }
            "--verify-store" => parsed.verify_store = true,
            "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if parsed.addr.is_none() && parsed.addr_file.is_none() {
        return Err("one of --addr / --addr-file is required".to_string());
    }
    Ok(parsed)
}

fn resolve_addr(args: &Args) -> Result<SocketAddr, String> {
    let text = match (&args.addr, &args.addr_file) {
        (Some(addr), _) => addr.clone(),
        (None, Some(path)) => {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(path) {
                    Ok(text) if !text.trim().is_empty() => break text.trim().to_string(),
                    _ if Instant::now() >= deadline => {
                        return Err(format!("addr file {} never appeared", path.display()));
                    }
                    _ => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
        (None, None) => unreachable!("parse() enforces an address source"),
    };
    text.parse()
        .map_err(|_| format!("`{text}` is not a socket address"))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("cuasmrld-bench: {message}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match resolve_addr(&args) {
        Ok(addr) => addr,
        Err(message) => {
            eprintln!("cuasmrld-bench: {message}");
            return ExitCode::FAILURE;
        }
    };
    let report = run_load(addr, &args.spec);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    if let Some(path) = &args.out {
        if std::fs::write(path, &json).is_err() {
            eprintln!("cuasmrld-bench: failed to write {}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if report.failed() > 0 {
        eprintln!("cuasmrld-bench: {} request(s) failed", report.failed());
        return ExitCode::FAILURE;
    }
    if report.warm_hit_rate < args.min_hit_rate {
        eprintln!(
            "cuasmrld-bench: warm store-hit rate {:.3} below required {:.3}",
            report.warm_hit_rate, args.min_hit_rate
        );
        return ExitCode::FAILURE;
    }
    if args.verify_store && (report.checksum_failures > 0 || report.journal_replays > 0) {
        eprintln!(
            "cuasmrld-bench: durability counters nonzero on a clean burst: \
             {} checksum failure(s), {} journal replay(s)",
            report.checksum_failures, report.journal_replays
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
