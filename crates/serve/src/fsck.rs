//! Offline verification and repair of a store directory — the library
//! behind the `cuasmrld-fsck` binary.
//!
//! [`fsck`] walks a (cold) store directory and classifies every file into
//! the verdict taxonomy of `docs/SERVICE.md`:
//!
//! | verdict | meaning |
//! |---|---|
//! | `ok` | decodes, checksum verifies, provenance sane |
//! | `torn` | an interrupted mutation: a cut-off entry write, a journaled write whose file is missing, or a journaled removal that never reached the file |
//! | `corrupt` | decodes structurally but fails its checksum / schema version, or is damaged mid-file |
//! | `orphaned` | crash debris (unpublished temp files) |
//! | `stale-generation` | an entry stamped with a *future* journal generation — a store directory mixed from different machines or restored from a newer backup |
//!
//! With `repair`, every non-ok file is moved (never deleted) into the
//! [`QUARANTINE_DIR`] subdirectory, entries covered by a valid journal
//! record are rewritten from it, and a torn journal tail is truncated.
//! After a successful repair the directory reopens with every surviving
//! entry byte-identical to a state the store actually passed through —
//! the same pre-or-post guarantee the crash-point sweep proves for plain
//! reopen.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::journal::{self, JournalOp, JOURNAL_FILE};
use crate::store::{decode_entry_bytes, StoreError};

/// Version of the fsck report's JSON schema (stable for scripting; bumped
/// on any field-level change).
pub const FSCK_SCHEMA_VERSION: u32 = 1;

/// Subdirectory quarantined files are moved into. Quarantine is a move,
/// never a delete: the bytes stay available for forensics, and the store
/// ignores the subdirectory entirely.
pub const QUARANTINE_DIR: &str = "quarantine";

/// The per-file verdict taxonomy (serialized in kebab-case strings — see
/// the module docs table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryVerdict {
    /// Decodes, checksum verifies, provenance sane.
    Ok,
    /// An interrupted mutation (cut-off write, lost journaled write,
    /// unapplied journaled removal).
    Torn,
    /// Structural damage, checksum failure, or schema-version skew.
    Corrupt,
    /// Unpublished crash debris.
    Orphaned,
    /// Stamped with a future journal generation.
    StaleGeneration,
}

impl EntryVerdict {
    /// The stable string form used in the JSON report.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EntryVerdict::Ok => "ok",
            EntryVerdict::Torn => "torn",
            EntryVerdict::Corrupt => "corrupt",
            EntryVerdict::Orphaned => "orphaned",
            EntryVerdict::StaleGeneration => "stale-generation",
        }
    }
}

/// One file's verdict in the report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsckEntry {
    /// File name (store-dir relative).
    pub file: String,
    /// Verdict string ([`EntryVerdict::as_str`]).
    pub verdict: String,
    /// Human-readable detail.
    pub detail: String,
    /// What `--repair` did (empty without repair or when nothing was
    /// needed).
    pub action: String,
}

/// The journal's health in the report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FsckJournal {
    /// Whether a journal file exists.
    pub present: bool,
    /// Generation from the header (0 when absent/damaged).
    pub generation: u64,
    /// Valid records found.
    pub records: usize,
    /// Whether a torn tail was found (truncated by repair).
    pub torn_tail: bool,
    /// Whether the header itself was unreadable.
    pub damaged_header: bool,
    /// What `--repair` did to the journal (empty when nothing was
    /// needed).
    pub action: String,
}

/// The stable JSON report of one fsck run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FsckReport {
    /// [`FSCK_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The directory walked.
    pub store_dir: String,
    /// Whether this run repaired.
    pub repair: bool,
    /// Journal health.
    pub journal: FsckJournal,
    /// Per-file verdicts, sorted by file name.
    pub entries: Vec<FsckEntry>,
    /// Count of `ok` verdicts.
    pub ok: usize,
    /// Count of `torn` verdicts.
    pub torn: usize,
    /// Count of `corrupt` verdicts.
    pub corrupt: usize,
    /// Count of `orphaned` verdicts.
    pub orphaned: usize,
    /// Count of `stale-generation` verdicts.
    pub stale_generation: usize,
    /// Files repaired (quarantined and/or rewritten from the journal).
    pub repaired: usize,
    /// Files moved into [`QUARANTINE_DIR`].
    pub quarantined: usize,
    /// Files a repair was attempted on but failed (I/O errors) — the only
    /// thing that leaves a repaired store unhealthy.
    pub unrepairable: usize,
}

impl FsckReport {
    /// Whether the walked store needs no attention: every file ok and the
    /// journal clean (after repair: nothing unrepairable).
    #[must_use]
    pub fn healthy(&self) -> bool {
        if self.repair {
            self.unrepairable == 0
        } else {
            self.torn == 0
                && self.corrupt == 0
                && self.orphaned == 0
                && self.stale_generation == 0
                && !self.journal.torn_tail
                && !self.journal.damaged_header
        }
    }
}

struct Walk<'a> {
    dir: &'a Path,
    repair: bool,
    report: FsckReport,
    /// Last journal op per stem (what replay would apply).
    journal_ops: HashMap<String, JournalOp>,
}

impl Walk<'_> {
    fn quarantine(&mut self, name: &str) -> io::Result<()> {
        let quarantine = self.dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&quarantine)?;
        std::fs::rename(self.dir.join(name), quarantine.join(name))?;
        self.report.quarantined += 1;
        Ok(())
    }

    /// Rewrites `{stem}.json` from its journal record (temp + rename).
    fn rewrite_from_journal(&self, stem: &str, entry_json: &str) -> io::Result<()> {
        let temp = self.dir.join(format!(".{stem}.tmp.{}", std::process::id()));
        std::fs::write(&temp, entry_json)?;
        std::fs::rename(&temp, self.dir.join(format!("{stem}.json")))
    }

    /// Applies the configured repair for one bad file; records the action
    /// and the repaired/unrepairable tallies.
    fn repair_file(&mut self, name: &str, stem: Option<&str>) -> String {
        if !self.repair {
            return String::new();
        }
        let mut action = String::new();
        if let Err(err) = self.quarantine(name) {
            self.report.unrepairable += 1;
            return format!("quarantine failed: {err}");
        }
        action.push_str("quarantined");
        if let Some(stem) = stem {
            if let Some(JournalOp::Put { entry, .. }) = self.journal_ops.get(stem) {
                match serde_json::to_string_pretty(entry) {
                    Ok(json) => match self.rewrite_from_journal(stem, &json) {
                        Ok(()) => action.push_str("; rewritten from journal record"),
                        Err(err) => {
                            self.report.unrepairable += 1;
                            action.push_str(&format!("; journal rewrite failed: {err}"));
                            self.report.repaired += 1;
                            return action;
                        }
                    },
                    Err(_) => action.push_str("; journal record unserializable"),
                }
            } else {
                action.push_str("; entry will be recomputed on demand");
            }
        }
        self.report.repaired += 1;
        action
    }

    fn record(&mut self, file: String, verdict: EntryVerdict, detail: String, action: String) {
        match verdict {
            EntryVerdict::Ok => self.report.ok += 1,
            EntryVerdict::Torn => self.report.torn += 1,
            EntryVerdict::Corrupt => self.report.corrupt += 1,
            EntryVerdict::Orphaned => self.report.orphaned += 1,
            EntryVerdict::StaleGeneration => self.report.stale_generation += 1,
        }
        self.report.entries.push(FsckEntry {
            file,
            verdict: verdict.as_str().to_string(),
            detail,
            action,
        });
    }
}

/// Walks `dir` offline, classifying every file (see the module docs), and
/// — when `repair` is set — quarantining damage, rewriting entries from
/// their journal records, and truncating a torn journal tail.
///
/// # Errors
///
/// Returns an I/O error only when the directory itself cannot be listed;
/// per-file failures are verdicts, not errors.
pub fn fsck(dir: &Path, repair: bool) -> io::Result<FsckReport> {
    let mut walk = Walk {
        dir,
        repair,
        report: FsckReport {
            schema_version: FSCK_SCHEMA_VERSION,
            store_dir: dir.display().to_string(),
            repair,
            journal: FsckJournal::default(),
            entries: Vec::new(),
            ok: 0,
            torn: 0,
            corrupt: 0,
            orphaned: 0,
            stale_generation: 0,
            repaired: 0,
            quarantined: 0,
            unrepairable: 0,
        },
        journal_ops: HashMap::new(),
    };

    // 1. The journal: the repair evidence, read first.
    let journal_path = dir.join(JOURNAL_FILE);
    let mut journal_ops_in_order: Vec<JournalOp> = Vec::new();
    match std::fs::read(&journal_path) {
        Ok(bytes) => {
            let replay = journal::decode(&bytes);
            walk.report.journal = FsckJournal {
                present: true,
                generation: replay.generation,
                records: replay.ops.len(),
                torn_tail: replay.torn_tail,
                damaged_header: replay.damaged_header,
                action: String::new(),
            };
            journal_ops_in_order = replay.ops;
        }
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => {
            walk.report.journal.present = true;
            walk.report.journal.damaged_header = true;
            walk.report.journal.action = format!("unreadable: {err}");
        }
    }
    for op in &journal_ops_in_order {
        walk.journal_ops.insert(op.stem().to_string(), op.clone());
    }

    // 2. Every file in the directory, in sorted order for a stable report.
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    for name in names {
        if name == JOURNAL_FILE {
            continue;
        }
        let path = dir.join(&name);
        if name.starts_with('.') && name.contains(".tmp.") {
            let action = walk.repair_file(&name, None);
            walk.record(
                name,
                EntryVerdict::Orphaned,
                "unpublished temp file (crash debris; the rename never happened)".to_string(),
                action,
            );
            continue;
        }
        if name.ends_with("_telemetry.json") {
            classify_manifest(&mut walk, &name, dir);
            continue;
        }
        if name.ends_with(".ckpt") {
            classify_checkpoint(&mut walk, &name, &path);
            continue;
        }
        if name.ends_with(".json") {
            classify_entry(&mut walk, &name, &path);
            continue;
        }
        // Unknown file families are reported, never touched.
        walk.record(
            name,
            EntryVerdict::Ok,
            "not a store-managed file family; left alone".to_string(),
            String::new(),
        );
    }

    // 3. Journal records whose entry files are gone or stale: the write
    // (or removal) a kill interrupted. Replay them.
    let mut stems: Vec<&String> = walk.journal_ops.keys().collect();
    stems.sort();
    let mut replays: Vec<(String, EntryVerdict, String, Option<String>)> = Vec::new();
    for stem in stems {
        let entry_file = format!("{stem}.json");
        let path = dir.join(&entry_file);
        match &walk.journal_ops[stem.as_str()] {
            JournalOp::Put { entry, .. } if !path.exists() => {
                let json = serde_json::to_string_pretty(entry).unwrap_or_default();
                replays.push((
                    entry_file,
                    EntryVerdict::Torn,
                    "journaled write never reached the entry file".to_string(),
                    Some(json),
                ));
            }
            JournalOp::Remove { .. } if path.exists() => {
                replays.push((
                    entry_file,
                    EntryVerdict::Torn,
                    "journaled removal never reached the entry file".to_string(),
                    None,
                ));
            }
            _ => {}
        }
    }
    for (entry_file, verdict, detail, rewrite) in replays {
        let mut action = String::new();
        if walk.repair {
            match &rewrite {
                Some(json) => {
                    let stem = entry_file.trim_end_matches(".json");
                    match walk.rewrite_from_journal(stem, json) {
                        Ok(()) => {
                            action = "rewritten from journal record".to_string();
                            walk.report.repaired += 1;
                        }
                        Err(err) => {
                            action = format!("journal rewrite failed: {err}");
                            walk.report.unrepairable += 1;
                        }
                    }
                }
                None => {
                    action = walk.repair_file(&entry_file, None);
                }
            }
        }
        walk.record(entry_file, verdict, detail, action);
    }

    // 4. A torn or headerless journal is itself repaired by truncation to
    // its valid prefix (damaged header: a fresh generation-1 header — the
    // evidence is gone either way, and the store would rotate it away too).
    if walk.repair && (walk.report.journal.torn_tail || walk.report.journal.damaged_header) {
        let generation = walk.report.journal.generation.max(1);
        let image = journal::encode(generation, &journal_ops_in_order);
        match std::fs::write(&journal_path, image) {
            Ok(()) => {
                walk.report.journal.action = if walk.report.journal.damaged_header {
                    "rewritten with a fresh header".to_string()
                } else {
                    "torn tail truncated".to_string()
                };
                walk.report.repaired += 1;
            }
            Err(err) => {
                walk.report.journal.action = format!("truncation failed: {err}");
                walk.report.unrepairable += 1;
            }
        }
    }

    Ok(walk.report)
}

/// Whether a parse-failure detail describes a document that *ended*
/// mid-token — the signature of a cut-off (torn) write rather than
/// in-place damage.
fn looks_torn(detail: &str) -> bool {
    detail.contains("unexpected None")
        || detail.contains("unterminated")
        || detail.contains("truncated")
        || detail.contains("EOF")
}

/// Classifies one store entry file.
fn classify_entry(walk: &mut Walk<'_>, name: &str, path: &Path) {
    let stem = name.trim_end_matches(".json").to_string();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) => {
            let action = walk.repair_file(name, Some(&stem));
            walk.record(
                name.to_string(),
                EntryVerdict::Corrupt,
                format!("unreadable: {err}"),
                action,
            );
            return;
        }
    };
    match decode_entry_bytes(path, &bytes) {
        Ok(entry) => {
            let journal_generation = walk.report.journal.generation;
            if walk.report.journal.present
                && !walk.report.journal.damaged_header
                && entry.generation > journal_generation
            {
                let action = walk.repair_file(name, Some(&stem));
                walk.record(
                    name.to_string(),
                    EntryVerdict::StaleGeneration,
                    format!(
                        "entry stamped generation {} but the journal is at {} — \
                         mixed store directories or a restored newer backup",
                        entry.generation, journal_generation
                    ),
                    action,
                );
            } else {
                walk.record(
                    name.to_string(),
                    EntryVerdict::Ok,
                    format!("checksum {} verified", entry.checksum),
                    String::new(),
                );
            }
        }
        Err(StoreError::Corrupt { detail, .. }) => {
            // A cut-off document is a torn write, not content damage.
            let verdict = if looks_torn(&detail) {
                EntryVerdict::Torn
            } else {
                EntryVerdict::Corrupt
            };
            let action = walk.repair_file(name, Some(&stem));
            walk.record(name.to_string(), verdict, detail, action);
        }
        Err(StoreError::UnsupportedVersion { found, .. }) => {
            let action = walk.repair_file(name, Some(&stem));
            walk.record(
                name.to_string(),
                EntryVerdict::Corrupt,
                format!("schema version skew: entry is v{found}"),
                action,
            );
        }
        Err(StoreError::ChecksumMismatch {
            recorded, computed, ..
        }) => {
            let action = walk.repair_file(name, Some(&stem));
            walk.record(
                name.to_string(),
                EntryVerdict::Corrupt,
                format!("checksum mismatch: recorded {recorded}, computed {computed}"),
                action,
            );
        }
        Err(StoreError::Io(err)) => {
            let action = walk.repair_file(name, Some(&stem));
            walk.record(
                name.to_string(),
                EntryVerdict::Corrupt,
                format!("unreadable: {err}"),
                action,
            );
        }
    }
}

/// Classifies one telemetry manifest (`{gpu}_{suite}_telemetry.json`).
fn classify_manifest(walk: &mut Walk<'_>, name: &str, dir: &Path) {
    let key = name.trim_end_matches("_telemetry.json");
    let Some((gpu, suite)) = key.rsplit_once('_') else {
        walk.record(
            name.to_string(),
            EntryVerdict::Corrupt,
            "unparseable manifest file name".to_string(),
            String::new(),
        );
        return;
    };
    match cuasmrl::load_run_manifest_checked(dir, gpu, suite) {
        Ok(Some(manifest)) => walk.record(
            name.to_string(),
            EntryVerdict::Ok,
            format!("manifest with {} kernels verified", manifest.kernels.len()),
            String::new(),
        ),
        Ok(None) => walk.record(
            name.to_string(),
            EntryVerdict::Ok,
            "absent (raced away)".to_string(),
            String::new(),
        ),
        Err(cuasmrl::ManifestError::ChecksumMismatch { .. }) => {
            let action = walk.repair_file(name, None);
            walk.record(
                name.to_string(),
                EntryVerdict::Corrupt,
                "manifest fails its checksum; the daemon rebuilds it".to_string(),
                action,
            );
        }
        Err(cuasmrl::ManifestError::Corrupt { detail, .. }) => {
            let verdict = if looks_torn(&detail) {
                EntryVerdict::Torn
            } else {
                EntryVerdict::Corrupt
            };
            let action = walk.repair_file(name, None);
            walk.record(name.to_string(), verdict, detail, action);
        }
    }
}

/// Classifies one RL training checkpoint (`{stem}.ckpt`).
fn classify_checkpoint(walk: &mut Walk<'_>, name: &str, path: &Path) {
    match rl::Checkpoint::read(path) {
        Ok(_) => walk.record(
            name.to_string(),
            EntryVerdict::Ok,
            "training checkpoint verified".to_string(),
            String::new(),
        ),
        Err(err) => {
            // A bad checkpoint only costs a cold restart of that search;
            // quarantining it is the whole repair.
            let action = walk.repair_file(name, None);
            walk.record(
                name.to_string(),
                EntryVerdict::Corrupt,
                format!("checkpoint damage: {err}"),
                action,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CanonicalRequest, OptimizeRequest, RequestDefaults, RequestKey};
    use crate::store::{ScheduleStore, StoreEntry, STORE_SCHEMA_VERSION};

    fn key_for(kernel: &str, seed: u64) -> RequestKey {
        let mut request = OptimizeRequest::table2(kernel, "ampere");
        request.seed = Some(seed);
        let canonical: CanonicalRequest = request
            .canonicalize(&RequestDefaults { scale: 16, seed: 0 })
            .unwrap();
        RequestKey::of(&canonical)
    }

    fn entry_for(key: &RequestKey, seed: u64) -> StoreEntry {
        StoreEntry {
            schema_version: STORE_SCHEMA_VERSION,
            canonical: key.canonical.clone(),
            arch: key.arch.clone(),
            kernel: key.kernel.clone(),
            seed,
            generation: 0,
            checksum: String::new(),
            report: cuasmrl::OptimizationReport {
                kernel: key.kernel.clone(),
                baseline_us: 10.0,
                optimized_us: 8.0,
                speedup: 1.25,
                verified: true,
                optimized_listing: String::new(),
                moves: Vec::new(),
            },
        }
        .seal()
    }

    fn temp_dir(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "cuasmrld-fsck-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn a_healthy_store_reports_all_ok() {
        let dir = temp_dir("healthy");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        for seed in 0..3 {
            let key = key_for("softmax", seed);
            store.put(&key, entry_for(&key, seed)).unwrap();
        }
        drop(store);
        let report = fsck(&dir, false).unwrap();
        assert!(report.healthy(), "healthy store: {report:?}");
        assert_eq!(report.ok, 3);
        assert_eq!(report.entries.len(), 3);
        assert!(report.journal.present);
        // The report is stable JSON, sorted by file name.
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: FsckReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ok, 3);
        let mut sorted = report.entries.clone();
        sorted.sort_by(|a, b| a.file.cmp(&b.file));
        assert_eq!(
            sorted.iter().map(|e| &e.file).collect::<Vec<_>>(),
            report.entries.iter().map(|e| &e.file).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_families_classify_and_repair_into_quarantine() {
        let dir = temp_dir("repair");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let keep = key_for("softmax", 1);
        let torn = key_for("bmm", 2);
        let rot = key_for("rmsnorm", 3);
        for (key, seed) in [(&keep, 1), (&torn, 2), (&rot, 3)] {
            store.put(key, entry_for(key, seed)).unwrap();
        }
        let keep_bytes = std::fs::read(store.entry_path(&keep)).unwrap();
        // Torn: cut the file mid-JSON. Corrupt: flip the recorded checksum.
        let torn_path = store.entry_path(&torn);
        let full = std::fs::read(&torn_path).unwrap();
        std::fs::write(&torn_path, &full[..full.len() / 3]).unwrap();
        let rot_path = store.entry_path(&rot);
        let text = std::fs::read_to_string(&rot_path).unwrap();
        let mut damaged = entry_for(&rot, 3);
        damaged.checksum = "beefbeefbeefbeef".to_string();
        std::fs::write(&rot_path, serde_json::to_string_pretty(&damaged).unwrap()).unwrap();
        assert_ne!(text, std::fs::read_to_string(&rot_path).unwrap());
        // Orphan: planted temp debris.
        std::fs::write(dir.join(".zzz.tmp.999"), "{").unwrap();
        drop(store);

        let dry = fsck(&dir, false).unwrap();
        assert!(!dry.healthy());
        assert_eq!(dry.torn, 1);
        assert_eq!(dry.corrupt, 1);
        assert_eq!(dry.orphaned, 1);
        assert_eq!(dry.ok, 1);

        // Repair: quarantine + journal replay (the puts are still in the
        // un-rotated journal, so both bad entries are rewritten).
        let repaired = fsck(&dir, true).unwrap();
        assert!(repaired.healthy(), "{repaired:?}");
        assert_eq!(repaired.unrepairable, 0);
        assert!(repaired.quarantined >= 3);
        assert!(dir.join(QUARANTINE_DIR).is_dir());
        // The untouched entry is byte-identical; the repaired ones decode.
        assert_eq!(
            std::fs::read(dir.join(format!("{}.json", keep.file_stem()))).unwrap(),
            keep_bytes
        );
        let reopened = ScheduleStore::open(&dir, 8).unwrap();
        assert!(
            reopened.get(&torn).unwrap().is_some(),
            "rewritten from journal"
        );
        assert!(
            reopened.get(&rot).unwrap().is_some(),
            "rewritten from journal"
        );
        assert_eq!(reopened.stats().skipped_at_open, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_entries_are_flagged() {
        let dir = temp_dir("stale");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let key = key_for("softmax", 9);
        store.put(&key, entry_for(&key, 9)).unwrap();
        // Forge an entry from "the future": stamp a generation far beyond
        // the journal's (a mixed store directory / restored newer backup).
        let mut future = entry_for(&key, 9);
        future.generation = 10_000;
        std::fs::write(
            store.entry_path(&key),
            serde_json::to_string_pretty(&future).unwrap(),
        )
        .unwrap();
        drop(store);
        let report = fsck(&dir, false).unwrap();
        assert_eq!(report.stale_generation, 1, "{report:?}");
        assert!(!report.healthy());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
