//! The persistent, memory-capped schedule store behind `cuasmrld`.
//!
//! One JSON file per served request, named by the request's
//! [`RequestKey::file_stem`] (see `docs/SERVICE.md` for the on-disk
//! layout). Writes are atomic (temp file + rename in the same directory),
//! so a crash mid-write never leaves a half-entry — the worst case is the
//! old state. Every entry carries [`STORE_SCHEMA_VERSION`]; decoding is a
//! typed-error path ([`StoreError`]) mirroring `rl::Checkpoint`: corruption
//! and version skew surface to the caller, never as a panic.
//!
//! In memory the store keeps at most `capacity` decoded entries in an LRU
//! map; colder entries stay on disk and are decoded back in on demand. The
//! disk set is the source of truth — a daemon restart reloads it, which is
//! what makes repeat traffic near-free across restarts.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use cuasmrl::OptimizationReport;
use serde::{Deserialize, Serialize};

use crate::protocol::RequestKey;

/// Version of the store's on-disk entry schema. Bumped on any field-level
/// change; entries with another version decode to
/// [`StoreError::UnsupportedVersion`].
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// One persisted schedule: the canonical request it answers plus the
/// optimization report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreEntry {
    /// [`STORE_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// The canonical request tuple this entry answers (digest preimage).
    pub canonical: String,
    /// Canonical architecture name.
    pub arch: String,
    /// Canonical kernel name.
    pub kernel: String,
    /// Base search seed.
    pub seed: u64,
    /// The report, bit-identical to the search that produced it.
    pub report: OptimizationReport,
}

/// Typed failures of the store (the service's `rl::CheckpointError`
/// analogue).
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// An entry file exists but does not decode.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Decoder detail.
        detail: String,
    },
    /// An entry file decodes but was written by another schema version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found in the file.
        found: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store io error: {err}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store entry {}: {detail}", path.display())
            }
            StoreError::UnsupportedVersion { path, found } => write!(
                f,
                "store entry {} has schema version {found}, this build reads {STORE_SCHEMA_VERSION}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Counters of the store's effectiveness, for telemetry and the load
/// generator's cache-hit economics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups answered (from memory or disk).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Hits that had to decode the entry back in from disk.
    pub disk_hits: u64,
    /// Entries currently decoded in memory.
    pub entries_in_memory: usize,
    /// Undecodable entry files skipped when the store was opened.
    pub skipped_at_open: usize,
    /// Orphaned temp files (from a crash mid-write) swept when the store
    /// was opened.
    pub tmp_swept: usize,
    /// Serialized bytes of the entries currently held in the in-memory LRU
    /// map — with `entries_in_memory`, the memory-pressure gauge a status
    /// probe surfaces. Added in v2 (additive, `#[serde(default)]`): stats
    /// from a v1 daemon decode as 0.
    #[serde(default)]
    pub lru_bytes: u64,
}

struct Inner {
    entries: HashMap<String, StoreEntry>,
    recency: VecDeque<String>,
    /// Serialized size of each in-memory entry, kept in lockstep with
    /// `entries` so `stats.lru_bytes` is always the exact LRU footprint.
    sizes: HashMap<String, u64>,
    stats: StoreStats,
}

impl Inner {
    fn touch(&mut self, stem: &str) {
        if let Some(position) = self.recency.iter().position(|s| s == stem) {
            self.recency.remove(position);
        }
        self.recency.push_back(stem.to_string());
    }

    fn insert(&mut self, stem: &str, entry: StoreEntry, capacity: usize) {
        let size = serde_json::to_string(&entry).map_or(0, |text| text.len() as u64);
        self.sizes.insert(stem.to_string(), size);
        self.entries.insert(stem.to_string(), entry);
        self.touch(stem);
        while self.entries.len() > capacity.max(1) {
            let Some(coldest) = self.recency.pop_front() else {
                break;
            };
            self.entries.remove(&coldest);
            self.sizes.remove(&coldest);
        }
        self.stats.entries_in_memory = self.entries.len();
        self.stats.lru_bytes = self.sizes.values().sum();
    }
}

/// The disk-backed, memory-capped schedule store (see the module docs).
pub struct ScheduleStore {
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ScheduleStore {
    /// Locks the inner state, recovering from poison: every mutation under
    /// this mutex is a single complete insert/touch, so state is consistent
    /// even if a panicking thread held the lock — a poisoned store must not
    /// take the daemon's worker pool down with it.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens (creating if needed) the store rooted at `dir`, reloading up
    /// to `capacity` existing entries into memory. Entry files that fail to
    /// decode are skipped and counted in
    /// [`StoreStats::skipped_at_open`] — one damaged file never takes the
    /// store down; the entry is recomputed and overwritten on next demand.
    /// Orphaned temp files left by a crash mid-[`ScheduleStore::put`] are
    /// swept (they are by construction incomplete — the rename that
    /// publishes an entry never happened) and counted in
    /// [`StoreStats::tmp_swept`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created or
    /// listed.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> Result<ScheduleStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut inner = Inner {
            entries: HashMap::new(),
            recency: VecDeque::new(),
            sizes: HashMap::new(),
            stats: StoreStats::default(),
        };
        let mut paths: Vec<PathBuf> = Vec::new();
        for dir_entry in std::fs::read_dir(&dir)?.filter_map(Result::ok) {
            let path = dir_entry.path();
            let name = dir_entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') && name.contains(".tmp.") {
                // A crash between write and rename left this orphan; no
                // entry ever pointed at it, so removal is always safe.
                if std::fs::remove_file(&path).is_ok() {
                    inner.stats.tmp_swept += 1;
                }
                continue;
            }
            if path.extension().is_some_and(|ext| ext == "json") {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            if inner.entries.len() >= capacity.max(1) {
                break;
            }
            match Self::decode_entry(&path) {
                Ok(entry) => {
                    let stem = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    inner.insert(&stem, entry, capacity);
                }
                Err(_) => inner.stats.skipped_at_open += 1,
            }
        }
        inner.stats.entries_in_memory = inner.entries.len();
        Ok(ScheduleStore {
            dir,
            capacity,
            inner: Mutex::new(inner),
        })
    }

    /// Decodes one entry file with the full typed-error path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read,
    /// [`StoreError::Corrupt`] when it is not a valid entry,
    /// [`StoreError::UnsupportedVersion`] on schema-version skew.
    pub fn decode_entry(path: &Path) -> Result<StoreEntry, StoreError> {
        let text = std::fs::read_to_string(path)?;
        let entry: StoreEntry = serde_json::from_str(&text).map_err(|err| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: err.to_string(),
        })?;
        if entry.schema_version != STORE_SCHEMA_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: entry.schema_version,
            });
        }
        Ok(entry)
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a key's entry file.
    #[must_use]
    pub fn entry_path(&self, key: &RequestKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Path of a key's in-flight training checkpoint (the warm-restart
    /// file a [`cuasmrl::SearchSession`] persists between PPO updates).
    #[must_use]
    pub fn checkpoint_path(&self, key: &RequestKey) -> PathBuf {
        self.dir.join(format!("{}.ckpt", key.file_stem()))
    }

    /// Looks a key up: memory first, then disk (decoding the entry back
    /// into the LRU map on a disk hit).
    ///
    /// # Errors
    ///
    /// Propagates the typed decode error when the entry file exists but
    /// cannot be read — the caller decides whether to recompute (the
    /// daemon does, overwriting the damaged file).
    pub fn get(&self, key: &RequestKey) -> Result<Option<StoreEntry>, StoreError> {
        let stem = key.file_stem();
        let mut inner = self.lock_inner();
        if let Some(entry) = inner.entries.get(&stem).cloned() {
            inner.stats.hits += 1;
            inner.touch(&stem);
            return Ok(Some(entry));
        }
        let path = self.entry_path(key);
        if !path.exists() {
            inner.stats.misses += 1;
            return Ok(None);
        }
        match Self::decode_entry(&path) {
            Ok(entry) => {
                inner.stats.hits += 1;
                inner.stats.disk_hits += 1;
                inner.insert(&stem, entry.clone(), self.capacity);
                Ok(Some(entry))
            }
            Err(err) => {
                inner.stats.misses += 1;
                Err(err)
            }
        }
    }

    /// Persists an entry atomically (temp file + rename) and caches it in
    /// memory, evicting the least-recently-used entry beyond capacity.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the write or rename fails.
    pub fn put(&self, key: &RequestKey, entry: StoreEntry) -> Result<(), StoreError> {
        let stem = key.file_stem();
        let final_path = self.entry_path(key);
        let temp_path = self.dir.join(format!(".{stem}.tmp.{}", std::process::id()));
        let text = serde_json::to_string_pretty(&entry).map_err(|err| StoreError::Corrupt {
            path: final_path.clone(),
            detail: err.to_string(),
        })?;
        std::fs::write(&temp_path, text)?;
        std::fs::rename(&temp_path, &final_path)?;
        let mut inner = self.lock_inner();
        inner.insert(&stem, entry, self.capacity);
        Ok(())
    }

    /// Current effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.lock_inner().stats
    }

    /// Number of entry files on disk (the durable set).
    #[must_use]
    pub fn entries_on_disk(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CanonicalRequest, OptimizeRequest, RequestDefaults};

    fn key_for(kernel: &str, seed: u64) -> RequestKey {
        let mut request = OptimizeRequest::table2(kernel, "ampere");
        request.seed = Some(seed);
        let canonical: CanonicalRequest = request
            .canonicalize(&RequestDefaults { scale: 16, seed: 0 })
            .unwrap();
        RequestKey::of(&canonical)
    }

    fn entry_for(key: &RequestKey, seed: u64) -> StoreEntry {
        StoreEntry {
            schema_version: STORE_SCHEMA_VERSION,
            canonical: key.canonical.clone(),
            arch: key.arch.clone(),
            kernel: key.kernel.clone(),
            seed,
            report: cuasmrl::OptimizationReport {
                kernel: key.kernel.clone(),
                baseline_us: 10.0,
                optimized_us: 8.0,
                speedup: 1.25,
                verified: true,
                optimized_listing: String::new(),
                moves: Vec::new(),
            },
        }
    }

    fn temp_dir(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cuasmrld-store-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn entries_survive_reopen_and_damage_is_a_typed_error() {
        let dir = temp_dir("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_for("softmax", 1);
        {
            let store = ScheduleStore::open(&dir, 8).unwrap();
            assert!(store.get(&key).unwrap().is_none());
            store.put(&key, entry_for(&key, 1)).unwrap();
            assert!(store.get(&key).unwrap().is_some());
        }
        // A fresh open (a daemon restart) reloads the durable set.
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let entry = store.get(&key).unwrap().expect("entry survived restart");
        assert_eq!(entry.kernel, "softmax");
        assert_eq!(store.entries_on_disk(), 1);

        // Damage the file: decoding is a typed error, opening skips it.
        let path = store.entry_path(&key);
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            ScheduleStore::decode_entry(&path),
            Err(StoreError::Corrupt { .. })
        ));
        let reopened = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.stats().skipped_at_open, 1);
        assert!(matches!(
            reopened.get(&key),
            Err(StoreError::Corrupt { .. })
        ));
        // Recomputing overwrites the damage.
        reopened.put(&key, entry_for(&key, 1)).unwrap();
        assert!(reopened.get(&key).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_named_not_reinterpreted() {
        let dir = temp_dir("version");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let key = key_for("bmm", 2);
        let mut entry = entry_for(&key, 2);
        entry.schema_version = 99;
        // put() writes whatever it is given; decode is where skew surfaces.
        store.put(&key, entry).unwrap();
        let fresh = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(fresh.stats().skipped_at_open, 1);
        assert!(matches!(
            ScheduleStore::decode_entry(&store.entry_path(&key)),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_cap_evicts_lru_but_disk_keeps_everything() {
        let dir = temp_dir("lru");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 2).unwrap();
        let keys: Vec<RequestKey> = (0..4).map(|seed| key_for("rmsnorm", seed)).collect();
        for (seed, key) in keys.iter().enumerate() {
            store.put(key, entry_for(key, seed as u64)).unwrap();
        }
        assert_eq!(store.stats().entries_in_memory, 2);
        assert_eq!(store.entries_on_disk(), 4);
        // The evicted entry still answers — from disk — and is re-cached.
        let before = store.stats().disk_hits;
        assert!(store.get(&keys[0]).unwrap().is_some());
        assert_eq!(store.stats().disk_hits, before + 1);
        assert!(store.get(&keys[0]).unwrap().is_some());
        assert_eq!(
            store.stats().disk_hits,
            before + 1,
            "second hit is in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_bytes_track_the_in_memory_set_and_default_on_old_stats() {
        let dir = temp_dir("bytes");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 2).unwrap();
        assert_eq!(store.stats().lru_bytes, 0);
        let keys: Vec<RequestKey> = (0..3).map(|seed| key_for("softmax", seed)).collect();
        store.put(&keys[0], entry_for(&keys[0], 0)).unwrap();
        let one = store.stats().lru_bytes;
        assert!(one > 0, "a cached entry has a footprint");
        store.put(&keys[1], entry_for(&keys[1], 1)).unwrap();
        let two = store.stats().lru_bytes;
        assert!(two > one, "a second entry grows the footprint");
        // The third insert evicts the coldest: the footprint stays at two
        // entries' worth, not three.
        store.put(&keys[2], entry_for(&keys[2], 2)).unwrap();
        assert_eq!(store.stats().entries_in_memory, 2);
        assert!(
            store.stats().lru_bytes < two + one,
            "eviction released bytes"
        );
        assert!(store.stats().lru_bytes > one);

        // Stats serialized by a v1 daemon carry no `lru_bytes`; the field
        // is additive and defaults to 0.
        let v1 = r#"{"hits": 3, "misses": 1, "disk_hits": 0,
                     "entries_in_memory": 2, "skipped_at_open": 0, "tmp_swept": 0}"#;
        let stats: StoreStats = serde_json::from_str(v1).unwrap();
        assert_eq!(stats.lru_bytes, 0);
        assert_eq!(stats.hits, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_temp_files_are_swept_at_open() {
        let dir = temp_dir("sweep");
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_for("fused_ff", 5);
        {
            let store = ScheduleStore::open(&dir, 8).unwrap();
            store.put(&key, entry_for(&key, 5)).unwrap();
        }
        // Plant the debris a crash between write and rename would leave
        // (put()'s temp naming: `.{stem}.tmp.{pid}`).
        let orphan = dir.join(format!(".{}.tmp.12345", key.file_stem()));
        std::fs::write(&orphan, "{ half-written").unwrap();

        let store = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(store.stats().tmp_swept, 1, "the orphan was counted");
        assert!(!orphan.exists(), "the orphan was removed");
        assert_eq!(store.stats().skipped_at_open, 0, "not counted as damage");
        let entry = store.get(&key).unwrap().expect("real entry still loads");
        assert_eq!(entry.kernel, "fused_ff");
        // A clean reopen sweeps nothing.
        assert_eq!(ScheduleStore::open(&dir, 8).unwrap().stats().tmp_swept, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
