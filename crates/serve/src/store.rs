//! The persistent, memory-capped, crash-consistent schedule store behind
//! `cuasmrld`.
//!
//! One JSON file per served request, named by the request's
//! [`RequestKey::file_stem`] (see `docs/SERVICE.md` for the on-disk
//! layout). Since durability v2 every mutation of the durable set is
//! write-ahead journaled ([`crate::journal`]) before the entry file is
//! touched, every write goes through the injectable [`StoreIo`] layer
//! with fsync, and every entry carries a content checksum verified on
//! every read path. The resulting guarantee — proven by the crash-point
//! sweep in `tests/durability.rs` — is that a kill at *any* I/O boundary
//! leaves a store that reopens to either the pre-write or the post-write
//! bytes of the interrupted mutation, never a third state.
//!
//! Every entry carries [`STORE_SCHEMA_VERSION`]; decoding is a
//! typed-error path ([`StoreError`]) mirroring `rl::Checkpoint`:
//! corruption, checksum mismatch and version skew surface to the caller,
//! never as a panic. The daemon heals all three the same way — treat as a
//! miss, recompute, overwrite — counting checksum mismatches in
//! [`StoreStats::checksum_failures`].
//!
//! In memory the store keeps at most `capacity` decoded entries in an LRU
//! map; colder entries stay on disk and are decoded back in on demand.
//! The disk set is the source of truth — a daemon restart reloads it
//! (applying the journal first), which is what makes repeat traffic
//! near-free across restarts.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cuasmrl::OptimizationReport;
use serde::{Deserialize, Serialize};

use crate::io::{RealIo, StoreIo};
use crate::journal::{fnv1a64, Journal, JournalOp};
use crate::protocol::RequestKey;

/// Version of the store's on-disk entry schema. Bumped on any field-level
/// change; entries with another version decode to
/// [`StoreError::UnsupportedVersion`]. v2 added the `generation` stamp
/// and the `checksum` trailer field.
pub const STORE_SCHEMA_VERSION: u32 = 2;

/// One persisted schedule: the canonical request it answers plus the
/// optimization report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreEntry {
    /// [`STORE_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// The canonical request tuple this entry answers (digest preimage).
    pub canonical: String,
    /// Canonical architecture name.
    pub arch: String,
    /// Canonical kernel name.
    pub kernel: String,
    /// Base search seed.
    pub seed: u64,
    /// Journal generation at write time — provenance, not content:
    /// excluded from the checksum, stamped by [`ScheduleStore::put`].
    /// `cuasmrld-fsck` flags entries from a *future* generation
    /// (`stale-generation`), the signature of a store directory mixed
    /// from different machines or restored from a newer backup.
    #[serde(default)]
    pub generation: u64,
    /// FNV-1a-64 (hex) over the entry's content fields — see
    /// [`StoreEntry::content_checksum`]. Verified on every read path;
    /// a mismatch decodes to [`StoreError::ChecksumMismatch`].
    #[serde(default)]
    pub checksum: String,
    /// The report, bit-identical to the search that produced it.
    pub report: OptimizationReport,
}

impl StoreEntry {
    /// The checksum of the entry's content fields (everything except the
    /// checksum itself and the `generation` provenance stamp), as 16 hex
    /// digits of FNV-1a-64.
    #[must_use]
    pub fn content_checksum(&self) -> String {
        let report = serde_json::to_string(&self.report).unwrap_or_default();
        let preimage = format!(
            "v{};canonical={};arch={};kernel={};seed={};report={report}",
            self.schema_version, self.canonical, self.arch, self.kernel, self.seed
        );
        format!("{:016x}", fnv1a64(preimage.as_bytes()))
    }

    /// Stamps the entry with its own content checksum. Every entry the
    /// daemon persists is sealed; an unsealed entry fails every read with
    /// [`StoreError::ChecksumMismatch`].
    #[must_use]
    pub fn seal(mut self) -> StoreEntry {
        self.checksum = self.content_checksum();
        self
    }
}

/// Typed failures of the store (the service's `rl::CheckpointError`
/// analogue).
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// An entry file exists but does not decode.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Decoder detail.
        detail: String,
    },
    /// An entry file decodes but was written by another schema version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found in the file.
        found: u32,
    },
    /// An entry file decodes but its content does not match its recorded
    /// checksum — silent corruption (bit rot, torn-then-patched bytes)
    /// that structural decoding alone cannot see. The daemon heals it by
    /// recompute-and-overwrite.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// The checksum recorded in the entry.
        recorded: String,
        /// The checksum computed from the entry's content.
        computed: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store io error: {err}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store entry {}: {detail}", path.display())
            }
            StoreError::UnsupportedVersion { path, found } => write!(
                f,
                "store entry {} has schema version {found}, this build reads {STORE_SCHEMA_VERSION}",
                path.display()
            ),
            StoreError::ChecksumMismatch {
                path,
                recorded,
                computed,
            } => write!(
                f,
                "store entry {} fails its checksum (recorded {recorded}, computed {computed})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Counters of the store's effectiveness, for telemetry and the load
/// generator's cache-hit economics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups answered (from memory or disk).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Hits that had to decode the entry back in from disk.
    pub disk_hits: u64,
    /// Entries currently decoded in memory.
    pub entries_in_memory: usize,
    /// Undecodable entry files skipped when the store was opened.
    pub skipped_at_open: usize,
    /// Orphaned temp files (from a crash mid-write) swept when the store
    /// was opened.
    pub tmp_swept: usize,
    /// Serialized bytes of the entries currently held in the in-memory LRU
    /// map — with `entries_in_memory`, the memory-pressure gauge a status
    /// probe surfaces. Added in v2 (additive, `#[serde(default)]`): stats
    /// from a v1 daemon decode as 0.
    #[serde(default)]
    pub lru_bytes: u64,
    /// Entries whose content failed its recorded checksum on a read path
    /// (get or open). Each is healed by recompute; a spike means the disk
    /// is silently corrupting data — see the SERVICE.md runbook. Additive
    /// since durability v2.
    #[serde(default)]
    pub checksum_failures: u64,
    /// Journal records applied at open because the entry files did not
    /// reflect them (a kill interrupted the covered mutation). Additive
    /// since durability v2.
    #[serde(default)]
    pub journal_replayed: u64,
    /// Torn journal tails (or damaged headers) truncated at open — each is
    /// one in-flight mutation that a kill made absent-not-torn. Additive
    /// since durability v2.
    #[serde(default)]
    pub journal_torn: u64,
    /// Current journal generation (a gauge, bumped on every rotation).
    /// Additive since durability v2.
    #[serde(default)]
    pub generation: u64,
}

struct Inner {
    entries: HashMap<String, StoreEntry>,
    recency: VecDeque<String>,
    /// Serialized size of each in-memory entry, kept in lockstep with
    /// `entries` so `stats.lru_bytes` is always the exact LRU footprint.
    sizes: HashMap<String, u64>,
    stats: StoreStats,
    /// The write-ahead journal, under the same lock as the maps so every
    /// append is strictly ordered with the mutation it covers.
    journal: Journal,
}

impl Inner {
    fn touch(&mut self, stem: &str) {
        if let Some(position) = self.recency.iter().position(|s| s == stem) {
            self.recency.remove(position);
        }
        self.recency.push_back(stem.to_string());
    }

    /// Inserts into the LRU map, keeping `lru_bytes` incremental and
    /// underflow-proof: replacing an entry (e.g. a heal-by-recompute of a
    /// corrupt one with a different serialized size) releases the *old*
    /// size, and every release saturates — a healed-then-evicted entry can
    /// never drive the gauge below zero.
    fn insert(&mut self, stem: &str, entry: StoreEntry, capacity: usize) {
        let size = serde_json::to_string(&entry).map_or(0, |text| text.len() as u64);
        if let Some(old) = self.sizes.insert(stem.to_string(), size) {
            self.stats.lru_bytes = self.stats.lru_bytes.saturating_sub(old);
        }
        self.stats.lru_bytes += size;
        self.entries.insert(stem.to_string(), entry);
        self.touch(stem);
        while self.entries.len() > capacity.max(1) {
            let Some(coldest) = self.recency.pop_front() else {
                break;
            };
            self.forget(&coldest);
        }
        self.stats.entries_in_memory = self.entries.len();
    }

    /// Drops one stem from the in-memory maps (not the disk), releasing
    /// its tracked bytes.
    fn forget(&mut self, stem: &str) {
        self.entries.remove(stem);
        if let Some(old) = self.sizes.remove(stem) {
            self.stats.lru_bytes = self.stats.lru_bytes.saturating_sub(old);
        }
        self.stats.entries_in_memory = self.entries.len();
    }
}

/// The disk-backed, memory-capped schedule store (see the module docs).
pub struct ScheduleStore {
    dir: PathBuf,
    capacity: usize,
    io: Arc<dyn StoreIo>,
    inner: Mutex<Inner>,
}

impl ScheduleStore {
    /// Journal appends between automatic rotations. Entries are compacted
    /// into their per-entry files eagerly at put time, so rotation only
    /// retires redundant records; this bound caps how much redundant
    /// journal a healthy store carries.
    pub const JOURNAL_ROTATE_EVERY: u64 = 64;

    /// Locks the inner state, recovering from poison: every mutation under
    /// this mutex is a single complete insert/touch, so state is consistent
    /// even if a panicking thread held the lock — a poisoned store must not
    /// take the daemon's worker pool down with it.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens (creating if needed) the store rooted at `dir` with the
    /// production filesystem I/O. See [`ScheduleStore::open_with_io`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created,
    /// listed, or its journal recovered.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> Result<ScheduleStore, StoreError> {
        Self::open_with_io(dir, capacity, Arc::new(RealIo))
    }

    /// Opens the store through an injectable [`StoreIo`] — the durability
    /// suite passes a [`crate::CrashPointIo`] here to kill the store at
    /// every I/O boundary.
    ///
    /// Open is also recovery: orphaned temp files left by a crash
    /// mid-write are swept (counted in [`StoreStats::tmp_swept`]), the
    /// write-ahead journal is replayed — rewriting any entry file a kill
    /// left behind its covering record ([`StoreStats::journal_replayed`]),
    /// truncating a torn tail ([`StoreStats::journal_torn`]) — and then
    /// rotated to a fresh generation. Entry files that fail to decode are
    /// skipped and counted in [`StoreStats::skipped_at_open`] (checksum
    /// mismatches additionally in [`StoreStats::checksum_failures`]) — one
    /// damaged file never takes the store down; the entry is recomputed
    /// and overwritten on next demand.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory cannot be created or
    /// listed, or journal recovery cannot write.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        capacity: usize,
        io: Arc<dyn StoreIo>,
    ) -> Result<ScheduleStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut stats = StoreStats::default();

        // 1. Sweep crash debris: a temp file is by construction
        // unpublished (the rename never happened), so removal is always
        // safe.
        for path in list_dir(&dir)? {
            let name = file_name(&path);
            if name.starts_with('.') && name.contains(".tmp.") && io.remove(&path).is_ok() {
                stats.tmp_swept += 1;
            }
        }

        // 2. Recover the journal: replay records the entry files do not
        // reflect, then rotate to a fresh generation (which also truncates
        // any torn tail).
        let (mut journal, replay) = Journal::open(&dir, Arc::clone(&io))?;
        if replay.torn_tail || replay.damaged_header {
            stats.journal_torn += 1;
        }
        let mut last_op_per_stem: Vec<&JournalOp> = Vec::new();
        for op in &replay.ops {
            last_op_per_stem.retain(|seen| seen.stem() != op.stem());
            last_op_per_stem.push(op);
        }
        for op in last_op_per_stem {
            match op {
                JournalOp::Put { stem, entry } => {
                    let path = dir.join(format!("{stem}.json"));
                    let desired = serde_json::to_string_pretty(entry).unwrap_or_default();
                    let current = match io.read(&path) {
                        Ok(bytes) => Some(bytes),
                        Err(err) if err.kind() == std::io::ErrorKind::NotFound => None,
                        Err(err) => return Err(err.into()),
                    };
                    if current.as_deref() != Some(desired.as_bytes()) {
                        let temp = dir.join(format!(".{stem}.tmp.{}", std::process::id()));
                        io.write(&temp, desired.as_bytes())?;
                        io.rename(&temp, &path)?;
                        stats.journal_replayed += 1;
                    }
                }
                JournalOp::Remove { stem } => {
                    let path = dir.join(format!("{stem}.json"));
                    match io.remove(&path) {
                        Ok(()) => stats.journal_replayed += 1,
                        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
                        Err(err) => return Err(err.into()),
                    }
                }
            }
        }
        journal.rotate()?;
        stats.generation = journal.generation();

        // 3. Reload the durable set into the LRU map, up to capacity.
        let mut inner = Inner {
            entries: HashMap::new(),
            recency: VecDeque::new(),
            sizes: HashMap::new(),
            stats,
            journal,
        };
        let mut paths: Vec<PathBuf> = list_dir(&dir)?
            .into_iter()
            .filter(|path| is_entry_file(path))
            .collect();
        paths.sort();
        for path in paths {
            if inner.entries.len() >= capacity.max(1) {
                break;
            }
            match io
                .read(&path)
                .map_err(StoreError::from)
                .and_then(|bytes| decode_entry_bytes(&path, &bytes))
            {
                Ok(entry) => {
                    let stem = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    inner.insert(&stem, entry, capacity);
                }
                Err(err) => {
                    if matches!(err, StoreError::ChecksumMismatch { .. }) {
                        inner.stats.checksum_failures += 1;
                    }
                    inner.stats.skipped_at_open += 1;
                }
            }
        }
        inner.stats.entries_in_memory = inner.entries.len();
        Ok(ScheduleStore {
            dir,
            capacity,
            io,
            inner: Mutex::new(inner),
        })
    }

    /// Decodes one entry file with the full typed-error path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read,
    /// [`StoreError::Corrupt`] when it is not a valid entry,
    /// [`StoreError::UnsupportedVersion`] on schema-version skew,
    /// [`StoreError::ChecksumMismatch`] when the content does not match
    /// its recorded checksum.
    pub fn decode_entry(path: &Path) -> Result<StoreEntry, StoreError> {
        let bytes = std::fs::read(path)?;
        decode_entry_bytes(path, &bytes)
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a key's entry file.
    #[must_use]
    pub fn entry_path(&self, key: &RequestKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Path of a key's in-flight training checkpoint (the warm-restart
    /// file a [`cuasmrl::SearchSession`] persists between PPO updates).
    #[must_use]
    pub fn checkpoint_path(&self, key: &RequestKey) -> PathBuf {
        self.dir.join(format!("{}.ckpt", key.file_stem()))
    }

    /// Looks a key up: memory first, then disk (decoding the entry back
    /// into the LRU map on a disk hit).
    ///
    /// # Errors
    ///
    /// Propagates the typed decode error when the entry file exists but
    /// cannot be read — the caller decides whether to recompute (the
    /// daemon does, overwriting the damaged file). A
    /// [`StoreError::ChecksumMismatch`] is additionally counted in
    /// [`StoreStats::checksum_failures`].
    pub fn get(&self, key: &RequestKey) -> Result<Option<StoreEntry>, StoreError> {
        let stem = key.file_stem();
        let mut inner = self.lock_inner();
        if let Some(entry) = inner.entries.get(&stem).cloned() {
            inner.stats.hits += 1;
            inner.touch(&stem);
            return Ok(Some(entry));
        }
        let path = self.entry_path(key);
        let bytes = match self.io.read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                inner.stats.misses += 1;
                return Ok(None);
            }
            Err(err) => {
                inner.stats.misses += 1;
                return Err(err.into());
            }
        };
        match decode_entry_bytes(&path, &bytes) {
            Ok(entry) => {
                inner.stats.hits += 1;
                inner.stats.disk_hits += 1;
                inner.insert(&stem, entry.clone(), self.capacity);
                Ok(Some(entry))
            }
            Err(err) => {
                if matches!(err, StoreError::ChecksumMismatch { .. }) {
                    inner.stats.checksum_failures += 1;
                }
                inner.stats.misses += 1;
                Err(err)
            }
        }
    }

    /// Persists an entry atomically-or-absent and caches it in memory,
    /// evicting the least-recently-used entry beyond capacity.
    ///
    /// The write is journaled first (fsynced), then published via temp
    /// file + rename: a kill during the append leaves a torn tail that
    /// truncates away (absent), a kill anywhere after it is replayed from
    /// the journal at the next open (post-write). The entry is stamped
    /// with the current journal generation; its content checksum (see
    /// [`StoreEntry::seal`]) is written exactly as given — planting an
    /// unsealed or skewed entry is how the tests prove the read paths
    /// catch damage.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the journal append, write or
    /// rename fails.
    pub fn put(&self, key: &RequestKey, mut entry: StoreEntry) -> Result<(), StoreError> {
        let stem = key.file_stem();
        let final_path = self.entry_path(key);
        let temp_path = self.dir.join(format!(".{stem}.tmp.{}", std::process::id()));
        let mut inner = self.lock_inner();
        entry.generation = inner.journal.generation();
        let text = serde_json::to_string_pretty(&entry).map_err(|err| StoreError::Corrupt {
            path: final_path.clone(),
            detail: err.to_string(),
        })?;
        inner.journal.append(&JournalOp::Put {
            stem: stem.clone(),
            entry: entry.clone(),
        })?;
        self.io.write(&temp_path, text.as_bytes())?;
        self.io.rename(&temp_path, &final_path)?;
        inner.insert(&stem, entry, self.capacity);
        if inner.journal.appends_since_rotate() >= Self::JOURNAL_ROTATE_EVERY {
            inner.journal.rotate()?;
            inner.stats.generation = inner.journal.generation();
        }
        Ok(())
    }

    /// Removes an entry from the durable set (journaled first, so a kill
    /// between the append and the file removal replays the removal at the
    /// next open) and drops it from memory. Returns whether anything was
    /// there to remove.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the journal append or the removal
    /// fails (a missing file is not a failure).
    pub fn remove(&self, key: &RequestKey) -> Result<bool, StoreError> {
        let stem = key.file_stem();
        let path = self.entry_path(key);
        let mut inner = self.lock_inner();
        inner
            .journal
            .append(&JournalOp::Remove { stem: stem.clone() })?;
        let on_disk = match self.io.remove(&path) {
            Ok(()) => true,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => false,
            Err(err) => return Err(err.into()),
        };
        let in_memory = inner.entries.contains_key(&stem);
        inner.forget(&stem);
        if let Some(position) = inner.recency.iter().position(|s| s == &stem) {
            inner.recency.remove(position);
        }
        Ok(on_disk || in_memory)
    }

    /// Forces a journal rotation. Entries are compacted into their
    /// per-entry files eagerly at put time, so this only retires the
    /// redundant records and bumps the generation — the periodic
    /// "compaction" of the WAL design.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the rotation cannot write.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.lock_inner();
        inner.journal.rotate()?;
        inner.stats.generation = inner.journal.generation();
        Ok(())
    }

    /// The current journal generation (what new entries are stamped
    /// with).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.lock_inner().journal.generation()
    }

    /// Current effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.lock_inner().stats
    }

    /// Number of entry files on disk (the durable set).
    #[must_use]
    pub fn entries_on_disk(&self) -> usize {
        list_dir(&self.dir)
            .map(|paths| paths.iter().filter(|path| is_entry_file(path)).count())
            .unwrap_or(0)
    }
}

/// Decodes entry bytes with the full typed-error path (see
/// [`ScheduleStore::decode_entry`]).
///
/// # Errors
///
/// [`StoreError::Corrupt`], [`StoreError::UnsupportedVersion`] or
/// [`StoreError::ChecksumMismatch`], in that precedence order.
pub fn decode_entry_bytes(path: &Path, bytes: &[u8]) -> Result<StoreEntry, StoreError> {
    let text = std::str::from_utf8(bytes).map_err(|err| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("unexpected EOF or non-UTF-8 bytes: {err}"),
    })?;
    let entry: StoreEntry = serde_json::from_str(text).map_err(|err| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: err.to_string(),
    })?;
    if entry.schema_version != STORE_SCHEMA_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: entry.schema_version,
        });
    }
    let computed = entry.content_checksum();
    if entry.checksum != computed {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
            recorded: entry.checksum.clone(),
            computed,
        });
    }
    Ok(entry)
}

/// Whether a path is a store entry file: `.json`, but not a service
/// telemetry manifest (those share the directory — see
/// `docs/ARTIFACTS.md` — and have their own sealed format).
fn is_entry_file(path: &Path) -> bool {
    path.extension().is_some_and(|ext| ext == "json")
        && !file_name(path).ends_with("_telemetry.json")
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn list_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    Ok(std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JOURNAL_FILE;
    use crate::protocol::{CanonicalRequest, OptimizeRequest, RequestDefaults};

    fn key_for(kernel: &str, seed: u64) -> RequestKey {
        let mut request = OptimizeRequest::table2(kernel, "ampere");
        request.seed = Some(seed);
        let canonical: CanonicalRequest = request
            .canonicalize(&RequestDefaults { scale: 16, seed: 0 })
            .unwrap();
        RequestKey::of(&canonical)
    }

    fn entry_for(key: &RequestKey, seed: u64) -> StoreEntry {
        StoreEntry {
            schema_version: STORE_SCHEMA_VERSION,
            canonical: key.canonical.clone(),
            arch: key.arch.clone(),
            kernel: key.kernel.clone(),
            seed,
            generation: 0,
            checksum: String::new(),
            report: cuasmrl::OptimizationReport {
                kernel: key.kernel.clone(),
                baseline_us: 10.0,
                optimized_us: 8.0,
                speedup: 1.25,
                verified: true,
                optimized_listing: String::new(),
                moves: Vec::new(),
            },
        }
        .seal()
    }

    /// An entry whose serialized size is inflated by `padding` bytes of
    /// listing, for the LRU accounting tests.
    fn padded_entry_for(key: &RequestKey, seed: u64, padding: usize) -> StoreEntry {
        let mut entry = entry_for(key, seed);
        entry.report.optimized_listing = "x".repeat(padding);
        entry.seal()
    }

    fn temp_dir(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cuasmrld-store-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn entries_survive_reopen_and_damage_is_a_typed_error() {
        let dir = temp_dir("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_for("softmax", 1);
        {
            let store = ScheduleStore::open(&dir, 8).unwrap();
            assert!(store.get(&key).unwrap().is_none());
            store.put(&key, entry_for(&key, 1)).unwrap();
            assert!(store.get(&key).unwrap().is_some());
        }
        // A fresh open (a daemon restart) reloads the durable set.
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let entry = store.get(&key).unwrap().expect("entry survived restart");
        assert_eq!(entry.kernel, "softmax");
        assert_eq!(store.entries_on_disk(), 1);
        // The restart rotated the journal: the put's record is retired, so
        // damage below cannot be silently healed from stale evidence.
        assert!(store.generation() >= 2);

        // Damage the file: decoding is a typed error, opening skips it.
        let path = store.entry_path(&key);
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            ScheduleStore::decode_entry(&path),
            Err(StoreError::Corrupt { .. })
        ));
        let reopened = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.stats().skipped_at_open, 1);
        assert!(matches!(
            reopened.get(&key),
            Err(StoreError::Corrupt { .. })
        ));
        // Recomputing overwrites the damage.
        reopened.put(&key, entry_for(&key, 1)).unwrap();
        assert!(reopened.get(&key).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_is_named_not_reinterpreted() {
        let dir = temp_dir("version");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let key = key_for("bmm", 2);
        let mut entry = entry_for(&key, 2);
        entry.schema_version = 99;
        // put() writes whatever it is given; decode is where skew surfaces.
        store.put(&key, entry).unwrap();
        let fresh = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(fresh.stats().skipped_at_open, 1);
        assert!(matches!(
            ScheduleStore::decode_entry(&store.entry_path(&key)),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_is_a_typed_error_and_counted() {
        let dir = temp_dir("checksum");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        let key = key_for("softmax", 7);
        // An unsealed entry (planted damage: content changed after the
        // checksum was recorded).
        let mut entry = entry_for(&key, 7);
        entry.report.speedup = 9.99;
        store.put(&key, entry).unwrap();
        drop(store);

        // A fresh open skips it, counting the mismatch distinctly.
        let fresh = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(fresh.stats().skipped_at_open, 1);
        assert_eq!(fresh.stats().checksum_failures, 1);
        // The read path reports the same typed error and counts again.
        assert!(matches!(
            fresh.get(&key),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        assert_eq!(fresh.stats().checksum_failures, 2);
        // Healing: recompute-and-overwrite with a sealed entry.
        fresh.put(&key, entry_for(&key, 7)).unwrap();
        assert!(fresh.get(&key).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_cap_evicts_lru_but_disk_keeps_everything() {
        let dir = temp_dir("lru");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 2).unwrap();
        let keys: Vec<RequestKey> = (0..4).map(|seed| key_for("rmsnorm", seed)).collect();
        for (seed, key) in keys.iter().enumerate() {
            store.put(key, entry_for(key, seed as u64)).unwrap();
        }
        assert_eq!(store.stats().entries_in_memory, 2);
        assert_eq!(store.entries_on_disk(), 4);
        // The evicted entry still answers — from disk — and is re-cached.
        let before = store.stats().disk_hits;
        assert!(store.get(&keys[0]).unwrap().is_some());
        assert_eq!(store.stats().disk_hits, before + 1);
        assert!(store.get(&keys[0]).unwrap().is_some());
        assert_eq!(
            store.stats().disk_hits,
            before + 1,
            "second hit is in-memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_bytes_track_the_in_memory_set_and_default_on_old_stats() {
        let dir = temp_dir("bytes");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 2).unwrap();
        assert_eq!(store.stats().lru_bytes, 0);
        let keys: Vec<RequestKey> = (0..3).map(|seed| key_for("softmax", seed)).collect();
        store.put(&keys[0], entry_for(&keys[0], 0)).unwrap();
        let one = store.stats().lru_bytes;
        assert!(one > 0, "a cached entry has a footprint");
        store.put(&keys[1], entry_for(&keys[1], 1)).unwrap();
        let two = store.stats().lru_bytes;
        assert!(two > one, "a second entry grows the footprint");
        // The third insert evicts the coldest: the footprint stays at two
        // entries' worth, not three.
        store.put(&keys[2], entry_for(&keys[2], 2)).unwrap();
        assert_eq!(store.stats().entries_in_memory, 2);
        assert!(
            store.stats().lru_bytes < two + one,
            "eviction released bytes"
        );
        assert!(store.stats().lru_bytes > one);

        // Stats serialized by a v1 daemon carry no `lru_bytes` (nor the
        // durability-v2 counters); the fields are additive and default.
        let v1 = r#"{"hits": 3, "misses": 1, "disk_hits": 0,
                     "entries_in_memory": 2, "skipped_at_open": 0, "tmp_swept": 0}"#;
        let stats: StoreStats = serde_json::from_str(v1).unwrap();
        assert_eq!(stats.lru_bytes, 0);
        assert_eq!(stats.checksum_failures, 0);
        assert_eq!(stats.journal_replayed, 0);
        assert_eq!(stats.journal_torn, 0);
        assert_eq!(stats.generation, 0);
        assert_eq!(stats.hits, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The satellite regression: healing a corrupt entry by recompute
    /// replaces an in-memory entry with one of a *different* serialized
    /// size; evicting the healed entry must release the new size, never
    /// underflow the gauge with the old one.
    #[test]
    fn evicting_a_healed_entry_never_underflows_lru_bytes() {
        let dir = temp_dir("heal-underflow");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 2).unwrap();
        let hot = key_for("softmax", 1);
        let cold = key_for("bmm", 2);

        // A fat entry, then plant corruption over it on disk: recorded
        // checksum no longer matches the (still fat) content. Compact
        // first so the journal holds no record to silently heal it from.
        store.put(&hot, padded_entry_for(&hot, 1, 4096)).unwrap();
        store.compact().unwrap();
        let mut damaged = padded_entry_for(&hot, 1, 4096);
        damaged.checksum = "0000000000000000".to_string();
        let text = serde_json::to_string_pretty(&damaged).unwrap();
        std::fs::write(store.entry_path(&hot), text).unwrap();
        drop(store);

        // Reopen: the damaged entry is skipped (mismatched sizes now live
        // only on disk), then healed by a recompute that is much smaller.
        let store = ScheduleStore::open(&dir, 2).unwrap();
        assert_eq!(store.stats().checksum_failures, 1);
        assert!(matches!(
            store.get(&hot),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        store.put(&hot, entry_for(&hot, 1)).unwrap(); // the heal: small
        let healed_footprint = store.stats().lru_bytes;

        // Evict the healed entry by filling the cap with other keys.
        store.put(&cold, entry_for(&cold, 2)).unwrap();
        let third = key_for("rmsnorm", 3);
        store.put(&third, padded_entry_for(&third, 3, 128)).unwrap();
        assert_eq!(store.stats().entries_in_memory, 2);
        let after = store.stats().lru_bytes;
        assert!(after > 0, "gauge never wraps or zeroes out");
        assert!(
            after < u64::MAX / 2,
            "gauge did not underflow (got {after})"
        );
        // The gauge equals the exact footprint of the two survivors.
        let survivors = serde_json::to_string(&store.get(&cold).unwrap().unwrap())
            .unwrap()
            .len() as u64
            + serde_json::to_string(&store.get(&third).unwrap().unwrap())
                .unwrap()
                .len() as u64;
        assert_eq!(store.stats().lru_bytes, survivors);
        assert!(
            healed_footprint
                >= serde_json::to_string(&store.get(&hot).unwrap().unwrap())
                    .unwrap()
                    .len() as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_temp_files_are_swept_at_open() {
        let dir = temp_dir("sweep");
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_for("fused_ff", 5);
        {
            let store = ScheduleStore::open(&dir, 8).unwrap();
            store.put(&key, entry_for(&key, 5)).unwrap();
        }
        // Plant the debris a crash between write and rename would leave
        // (put()'s temp naming: `.{stem}.tmp.{pid}`).
        let orphan = dir.join(format!(".{}.tmp.12345", key.file_stem()));
        std::fs::write(&orphan, "{ half-written").unwrap();

        let store = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(store.stats().tmp_swept, 1, "the orphan was counted");
        assert!(!orphan.exists(), "the orphan was removed");
        assert_eq!(store.stats().skipped_at_open, 0, "not counted as damage");
        let entry = store.get(&key).unwrap().expect("real entry still loads");
        assert_eq!(entry.kernel, "fused_ff");
        // A clean reopen sweeps nothing.
        assert_eq!(ScheduleStore::open(&dir, 8).unwrap().stats().tmp_swept, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_journal_replays_a_lost_entry_write_at_open() {
        let dir = temp_dir("replay");
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_for("softmax", 3);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        store.put(&key, entry_for(&key, 3)).unwrap();
        let good = std::fs::read(store.entry_path(&key)).unwrap();
        // Simulate a kill after the journal append but before the entry
        // file survived: delete the published file without rotating.
        std::fs::remove_file(store.entry_path(&key)).unwrap();
        drop(store);

        let reopened = ScheduleStore::open(&dir, 8).unwrap();
        assert_eq!(reopened.stats().journal_replayed, 1);
        assert_eq!(
            std::fs::read(reopened.entry_path(&key)).unwrap(),
            good,
            "replay rewrote the exact post-write bytes"
        );
        assert!(reopened.get(&key).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_is_journaled_and_replayed() {
        let dir = temp_dir("remove");
        let _ = std::fs::remove_dir_all(&dir);
        let key = key_for("bmm", 4);
        let store = ScheduleStore::open(&dir, 8).unwrap();
        store.put(&key, entry_for(&key, 4)).unwrap();
        assert!(store.remove(&key).unwrap());
        assert!(!store.remove(&key).unwrap(), "second removal is a no-op");
        assert!(store.get(&key).unwrap().is_none());
        assert_eq!(store.entries_on_disk(), 0);
        drop(store);

        // Simulate the kill window: re-plant the entry file as if the
        // journaled removal never reached it, then reopen — the Remove
        // record replays.
        let store = ScheduleStore::open(&dir, 8).unwrap();
        drop(store); // rotation retired the records; plant under a fresh journal
        let dir2 = temp_dir("remove2");
        let _ = std::fs::remove_dir_all(&dir2);
        let store = ScheduleStore::open(&dir2, 8).unwrap();
        store.put(&key, entry_for(&key, 4)).unwrap();
        let saved = std::fs::read(store.entry_path(&key)).unwrap();
        assert!(store.remove(&key).unwrap());
        // The kill window: the file comes back (removal "lost").
        std::fs::write(store.entry_path(&key), &saved).unwrap();
        drop(store);
        let reopened = ScheduleStore::open(&dir2, 8).unwrap();
        assert_eq!(reopened.stats().journal_replayed, 1);
        assert!(reopened.get(&key).unwrap().is_none());
        assert_eq!(reopened.entries_on_disk(), 0);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn rotation_is_periodic_and_compact_is_explicit() {
        let dir = temp_dir("rotate");
        let _ = std::fs::remove_dir_all(&dir);
        let store = ScheduleStore::open(&dir, 4).unwrap();
        let opened_at = store.generation();
        store
            .put(&key_for("softmax", 1), entry_for(&key_for("softmax", 1), 1))
            .unwrap();
        assert_eq!(store.generation(), opened_at, "no rotation mid-window");
        store.compact().unwrap();
        assert_eq!(store.generation(), opened_at + 1);
        // The journal file is back to a bare header after compaction.
        let journal_len = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert_eq!(journal_len, 20, "header only: 8 magic + 4 version + 8 gen");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
