//! The store's injectable I/O layer and deterministic crash-point
//! injection.
//!
//! Every byte the durable store moves goes through a [`StoreIo`]
//! implementation: [`RealIo`] in production, [`CrashPointIo`] in the
//! durability suite. `CrashPointIo` extends [`crate::FaultPlan`]'s
//! ordinal-keyed style down to the syscall boundary: every I/O operation
//! the store performs is numbered in program order, and a
//! [`CrashPoint`] kills the process model at exactly one ordinal — before
//! the operation, after it, or (for writes) mid-way through, leaving a
//! torn prefix on disk. After the crash fires every further operation
//! fails, exactly as a killed process performs no further I/O.
//!
//! The same wrapper doubles as a recorder: run a store cycle against
//! [`CrashPointIo::recording`] and [`CrashPointIo::ops`] returns the full
//! numbered operation log, which is how the crash-point *sweep* test
//! enumerates every boundary without hard-coding the store's I/O
//! sequence.
//!
//! Durability note: `fsync` is folded into [`StoreIo::write`] and
//! [`StoreIo::append`] — each returns only once the bytes are synced, so
//! "written but not yet synced, then power loss" is modelled by the
//! [`CrashEffect::Torn`] outcome of the same ordinal rather than by a
//! separate sync boundary.

use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The error message every operation after a simulated crash carries.
/// [`is_simulated_crash`] matches on it.
pub const SIMULATED_CRASH: &str = "simulated crash";

/// True when an I/O error came from a [`CrashPointIo`] kill rather than a
/// real filesystem failure.
#[must_use]
pub fn is_simulated_crash(err: &io::Error) -> bool {
    err.to_string().contains(SIMULATED_CRASH)
}

/// The filesystem operations the durable store performs, as an injectable
/// trait so tests can kill the store at every I/O boundary.
///
/// `write` and `append` are *durable*: they return only after the data is
/// flushed (`File::sync_all`). `rename` is the atomic publish primitive
/// (same-directory rename, POSIX-atomic).
pub trait StoreIo: Send + Sync {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error (including
    /// `NotFound`).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates/truncates `path` and writes `bytes`, fsyncing before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path` (creating it if absent), fsyncing before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` over `to`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error (including
    /// `NotFound` — callers that tolerate absence filter it).
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The production [`StoreIo`]: `std::fs` with fsync on every write path.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// When, relative to its target operation, a [`CrashPoint`] kills the
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashEffect {
    /// The operation never happens: the kill lands just before the
    /// syscall.
    Before,
    /// The operation is half-applied: a `write`/`append` persists only a
    /// prefix of its bytes (a torn write). For operations with no partial
    /// state (`read`, `rename`, `remove`) this degenerates to
    /// [`CrashEffect::Before`].
    Torn,
    /// The operation completes fully, then the kill lands.
    After,
}

impl fmt::Display for CrashEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CrashEffect::Before => "before",
            CrashEffect::Torn => "torn",
            CrashEffect::After => "after",
        };
        f.write_str(name)
    }
}

/// One deterministic kill: the `ordinal`-th I/O operation (0-based, in
/// program order) dies with the given [`CrashEffect`] — the ordinal-keyed
/// style of [`crate::FaultPlan`], taken down to the I/O boundary.
#[derive(Debug, Clone, Copy)]
pub struct CrashPoint {
    /// Which operation (0-based count of all [`StoreIo`] calls) to kill.
    pub ordinal: u64,
    /// How much of that operation survives.
    pub effect: CrashEffect,
}

/// One recorded I/O operation, for sweep-test enumeration.
#[derive(Debug, Clone)]
pub struct IoOp {
    /// 0-based program-order position.
    pub ordinal: u64,
    /// Operation kind: `read` / `write` / `append` / `rename` / `remove`.
    pub kind: &'static str,
    /// Target file name (final component; paths are store-relative by
    /// construction).
    pub file: String,
}

/// A [`StoreIo`] that records every operation and optionally kills the
/// store at one deterministic [`CrashPoint`]. After the crash fires, every
/// subsequent operation fails with [`SIMULATED_CRASH`] — a dead process
/// does no more I/O.
pub struct CrashPointIo {
    inner: RealIo,
    point: Option<CrashPoint>,
    next_ordinal: AtomicU64,
    crashed: AtomicBool,
    log: Mutex<Vec<IoOp>>,
}

impl CrashPointIo {
    /// A recorder: never crashes, logs every operation.
    #[must_use]
    pub fn recording() -> CrashPointIo {
        CrashPointIo {
            inner: RealIo,
            point: None,
            next_ordinal: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
        }
    }

    /// An injector that kills the store at `point`.
    #[must_use]
    pub fn crash_at(point: CrashPoint) -> CrashPointIo {
        CrashPointIo {
            point: Some(point),
            ..CrashPointIo::recording()
        }
    }

    /// The numbered operation log so far.
    #[must_use]
    pub fn ops(&self) -> Vec<IoOp> {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Whether the configured crash point has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn crash_error(&self) -> io::Error {
        io::Error::other(SIMULATED_CRASH)
    }

    /// Numbers (and logs) one operation; returns its effect, or an error
    /// when the store is already dead.
    fn admit(&self, kind: &'static str, path: &Path) -> io::Result<Option<CrashEffect>> {
        if self.crashed() {
            return Err(self.crash_error());
        }
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::SeqCst);
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(IoOp {
                ordinal,
                kind,
                file,
            });
        match self.point {
            Some(point) if point.ordinal == ordinal => {
                self.crashed.store(true, Ordering::SeqCst);
                Ok(Some(point.effect))
            }
            _ => Ok(None),
        }
    }
}

impl StoreIo for CrashPointIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.admit("read", path)? {
            // Reads mutate nothing: any kill at a read boundary is the
            // same as killing before it.
            Some(_) => Err(self.crash_error()),
            None => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.admit("write", path)? {
            Some(CrashEffect::Before) => Err(self.crash_error()),
            Some(CrashEffect::Torn) => {
                self.inner.write(path, &bytes[..bytes.len() / 2])?;
                Err(self.crash_error())
            }
            Some(CrashEffect::After) => {
                self.inner.write(path, bytes)?;
                Err(self.crash_error())
            }
            None => self.inner.write(path, bytes),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.admit("append", path)? {
            Some(CrashEffect::Before) => Err(self.crash_error()),
            Some(CrashEffect::Torn) => {
                self.inner.append(path, &bytes[..bytes.len() / 2])?;
                Err(self.crash_error())
            }
            Some(CrashEffect::After) => {
                self.inner.append(path, bytes)?;
                Err(self.crash_error())
            }
            None => self.inner.append(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.admit("rename", to)? {
            Some(CrashEffect::Before | CrashEffect::Torn) => Err(self.crash_error()),
            Some(CrashEffect::After) => {
                self.inner.rename(from, to)?;
                Err(self.crash_error())
            }
            None => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.admit("remove", path)? {
            Some(CrashEffect::Before | CrashEffect::Torn) => Err(self.crash_error()),
            Some(CrashEffect::After) => {
                self.inner.remove(path)?;
                Err(self.crash_error())
            }
            None => self.inner.remove(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cuasmrld-io-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn recording_numbers_every_operation_in_program_order() {
        let path = temp_file("record");
        let io = CrashPointIo::recording();
        io.write(&path, b"abc").unwrap();
        io.append(&path, b"def").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"abcdef");
        io.remove(&path).unwrap();
        let ops = io.ops();
        assert_eq!(
            ops.iter().map(|o| o.kind).collect::<Vec<_>>(),
            vec!["write", "append", "read", "remove"]
        );
        assert_eq!(
            ops.iter().map(|o| o.ordinal).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(!io.crashed());
    }

    #[test]
    fn a_crash_point_kills_that_operation_and_everything_after() {
        let path = temp_file("kill");
        let _ = std::fs::remove_file(&path);
        // Ordinal 1 (the append) dies before doing anything.
        let io = CrashPointIo::crash_at(CrashPoint {
            ordinal: 1,
            effect: CrashEffect::Before,
        });
        io.write(&path, b"abc").unwrap();
        let err = io.append(&path, b"def").unwrap_err();
        assert!(is_simulated_crash(&err));
        assert!(io.crashed());
        // The dead store does no further I/O.
        assert!(is_simulated_crash(&io.read(&path).unwrap_err()));
        // The file holds exactly the pre-crash state.
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_writes_leave_a_prefix_and_full_after_effects_apply() {
        let path = temp_file("torn");
        let _ = std::fs::remove_file(&path);
        let io = CrashPointIo::crash_at(CrashPoint {
            ordinal: 0,
            effect: CrashEffect::Torn,
        });
        assert!(is_simulated_crash(&io.write(&path, b"abcdef").unwrap_err()));
        assert_eq!(std::fs::read(&path).unwrap(), b"abc", "half survived");

        let io = CrashPointIo::crash_at(CrashPoint {
            ordinal: 0,
            effect: CrashEffect::After,
        });
        assert!(is_simulated_crash(&io.write(&path, b"xyz").unwrap_err()));
        assert_eq!(std::fs::read(&path).unwrap(), b"xyz", "fully applied");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rename_is_all_or_nothing_under_torn() {
        let from = temp_file("ren-from");
        let to = temp_file("ren-to");
        let _ = std::fs::remove_file(&to);
        std::fs::write(&from, b"payload").unwrap();
        // Torn degenerates to Before for rename: the publish either
        // happened or it did not.
        let io = CrashPointIo::crash_at(CrashPoint {
            ordinal: 0,
            effect: CrashEffect::Torn,
        });
        assert!(is_simulated_crash(&io.rename(&from, &to).unwrap_err()));
        assert!(from.exists() && !to.exists());
        let _ = std::fs::remove_file(&from);
    }
}
