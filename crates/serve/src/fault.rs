//! Deterministic fault injection for chaos testing the daemon.
//!
//! A [`FaultPlan`] maps *request ordinals* (the daemon's running count of
//! well-formed optimize requests, starting at 0) to injected [`FaultKind`]s.
//! Keying on ordinals instead of wall clock or randomness-at-injection-time
//! makes every chaos run reproducible: the same plan against the same
//! request sequence fires the same faults at the same requests, so a test
//! can assert the exact typed error — or the exact healed answer — each
//! fault produces. Plans can be written out explicitly, derived from a seed
//! with [`FaultPlan::seeded`] (splitmix64, the repo's standard seed
//! derivation), or loaded from a JSON file for the `--fault-plan` daemon
//! flag.
//!
//! Ordinals are assigned at *admission* (arrival order at the frame
//! parser), before the v2 priority queue reorders anything — so a plan
//! keyed on ordinals fires at the same requests whether they are served
//! FIFO, by deadline rank, or out of order across a pipelined session.
//!
//! Injection is config-gated: a daemon without a plan has zero fault-path
//! code active, and the plan lives in [`crate::ServerConfig`], never in the
//! wire protocol — clients cannot inject faults.

use std::path::Path;

use serde::{Deserialize, Serialize};

/// One kind of injected failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The schedule-store lookup for this request fails as if the disk read
    /// errored. The daemon treats it as a miss and recomputes (heal by
    /// recompute).
    StoreReadError,
    /// The schedule-store lookup for this request fails as if the entry
    /// were corrupt JSON. Same recovery: recompute and overwrite.
    StoreCorrupt,
    /// The worker handling this request panics mid-job. The panic is
    /// isolated, the client gets a typed `Internal` error, and the pool
    /// survives (heal by retry).
    WorkerPanic,
    /// The worker stalls this long before starting the search — long enough
    /// for a request deadline to expire, forcing the preemption path.
    SlowWorker {
        /// Stall duration in milliseconds.
        stall_ms: u64,
    },
}

/// A fault scheduled at one request ordinal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// 0-based index into the daemon's sequence of well-formed optimize
    /// requests.
    pub ordinal: u64,
    /// What goes wrong for that request.
    pub kind: FaultKind,
}

/// A deterministic fault schedule (see the module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults. Ordinals may repeat; the first match wins.
    pub faults: Vec<InjectedFault>,
}

/// splitmix64 — the repo's standard cheap seed-derivation hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan with an explicit fault list.
    #[must_use]
    pub fn new(faults: Vec<InjectedFault>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// Derives `count` faults over the first `span` request ordinals from a
    /// seed: ordinal and kind both come out of the splitmix64 stream, so the
    /// same seed always produces the same plan. Stalls are kept short
    /// (≤ 200 ms) so seeded plans stay usable in smoke tests.
    #[must_use]
    pub fn seeded(seed: u64, count: usize, span: u64) -> FaultPlan {
        let span = span.max(1);
        let faults = (0..count as u64)
            .map(|i| {
                let ordinal = splitmix64(seed ^ splitmix64(i)) % span;
                let roll = splitmix64(seed.wrapping_add(i).wrapping_mul(0x9E37)) % 4;
                let kind = match roll {
                    0 => FaultKind::StoreReadError,
                    1 => FaultKind::StoreCorrupt,
                    2 => FaultKind::WorkerPanic,
                    _ => FaultKind::SlowWorker {
                        stall_ms: 50 + splitmix64(seed ^ (i << 8)) % 151,
                    },
                };
                InjectedFault { ordinal, kind }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Loads a plan from a JSON file (the `--fault-plan` daemon flag).
    ///
    /// # Errors
    ///
    /// Returns the read error, or `InvalidData` when the JSON does not
    /// decode as a plan.
    pub fn from_file(path: &Path) -> std::io::Result<FaultPlan> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))
    }

    /// The fault scheduled at `ordinal`, if any (first match wins).
    #[must_use]
    pub fn fault_at(&self, ordinal: u64) -> Option<&FaultKind> {
        self.faults
            .iter()
            .find(|fault| fault.ordinal == ordinal)
            .map(|fault| &fault.kind)
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::new(vec![
            InjectedFault {
                ordinal: 0,
                kind: FaultKind::StoreReadError,
            },
            InjectedFault {
                ordinal: 3,
                kind: FaultKind::SlowWorker { stall_ms: 120 },
            },
        ]);
        let json = serde_json::to_string(&plan).unwrap();
        let decoded: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(decoded, plan);
        assert_eq!(plan.fault_at(0), Some(&FaultKind::StoreReadError));
        assert_eq!(
            plan.fault_at(3),
            Some(&FaultKind::SlowWorker { stall_ms: 120 })
        );
        assert_eq!(plan.fault_at(1), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(7, 8, 16);
        let b = FaultPlan::seeded(7, 8, 16);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::seeded(8, 8, 16), "different seed differs");
        assert_eq!(a.faults.len(), 8);
        for fault in &a.faults {
            assert!(fault.ordinal < 16);
            if let FaultKind::SlowWorker { stall_ms } = fault.kind {
                assert!((50..=200).contains(&stall_ms));
            }
        }
    }

    #[test]
    fn plan_files_round_trip_and_reject_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cuasmrld-fault-plan-{}.json", std::process::id()));
        let plan = FaultPlan::seeded(3, 4, 8);
        std::fs::write(&path, serde_json::to_string(&plan).unwrap()).unwrap();
        assert_eq!(FaultPlan::from_file(&path).unwrap(), plan);
        std::fs::write(&path, "not json").unwrap();
        assert_eq!(
            FaultPlan::from_file(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        let _ = std::fs::remove_file(&path);
    }
}
