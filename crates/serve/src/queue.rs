//! The deterministic deadline-aware admission queue behind the daemon's
//! worker pool — the v2 replacement for the old FIFO channel.
//!
//! Ordering: a bounded min-heap on `(rank, ordinal)`. The rank is the
//! request's [`crate::protocol::admission_rank`] — a pure function of the
//! request's `deadline_ms` and `priority`, no wall clock — and the ordinal
//! (admission arrival index) breaks ties, so the pop order of any fixed
//! set of queued requests is a deterministic function of that set alone:
//! however arrivals interleave within one admission batch, replays serve
//! bit-identically.
//!
//! Backpressure: [`AdmissionQueue::try_push`] never blocks. A full queue
//! returns the item along with the current depth so admission control can
//! answer a typed `Busy` carrying the saturation hint. Pop blocks until an
//! item or [`AdmissionQueue::close`]; a closed queue drains what it holds
//! (workers answer the leftovers `Busy` during a drain) and then returns
//! `None`, which is the workers' exit signal.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why [`AdmissionQueue::try_push`] refused an item; the item comes back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity. Carries the rejected item and the depth at
    /// rejection time (== capacity) — the `Busy` hint.
    Full {
        /// The rejected item.
        item: T,
        /// Queue depth when the push was refused.
        depth: usize,
    },
    /// The queue is closed (the daemon is shutting down).
    Closed(
        /// The rejected item.
        T,
    ),
}

struct Ranked<T> {
    rank: i64,
    ordinal: u64,
    item: T,
}

// Manual ordering on (rank, ordinal) only — `T` needs no bounds. Reversed
// so the std max-heap pops the *smallest* (rank, ordinal) first.
impl<T> PartialEq for Ranked<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.ordinal == other.ordinal
    }
}
impl<T> Eq for Ranked<T> {}
impl<T> PartialOrd for Ranked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Ranked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.rank, other.ordinal).cmp(&(self.rank, self.ordinal))
    }
}

struct State<T> {
    heap: BinaryHeap<Ranked<T>>,
    closed: bool,
}

/// The bounded, deterministic priority queue (see the module docs).
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Lock that survives poisoning: every mutation under it is one
    /// complete push/pop, so the heap is always structurally consistent
    /// even if a panicking thread held the lock.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().heap.len()
    }

    /// Non-blocking admission: queues the item at `(rank, ordinal)`.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] (with the current depth) at capacity,
    /// [`PushError::Closed`] after [`AdmissionQueue::close`]. The item is
    /// returned either way so the caller can answer its client.
    pub fn try_push(&self, rank: i64, ordinal: u64, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.heap.len() >= self.capacity {
            let depth = state.heap.len();
            return Err(PushError::Full { item, depth });
        }
        state.heap.push(Ranked {
            rank,
            ordinal,
            item,
        });
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns the lowest
    /// `(rank, ordinal)` one, or `None` once the queue is closed *and*
    /// drained — a closed queue still hands out its leftovers so the
    /// drain path can answer them.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(ranked) = state.heap.pop() {
                return Some(ranked.item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// blocked pops drain the remaining items and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{admission_rank, NO_DEADLINE_RANK_MS};

    /// Pops everything currently queued (the queue must be closed or the
    /// test would block at the end).
    fn drain(queue: &AdmissionQueue<&'static str>) -> Vec<&'static str> {
        let mut out = Vec::new();
        while let Some(item) = queue.pop() {
            out.push(item);
        }
        out
    }

    #[test]
    fn pop_order_is_rank_then_ordinal_regardless_of_arrival_interleaving() {
        // Four requests with distinct ranks plus two tied ones; every
        // arrival permutation of the batch must pop identically.
        let batch: Vec<(i64, u64, &'static str)> = vec![
            (admission_rank(Some(60_000), None), 0, "deadline-60s"),
            (admission_rank(Some(80_000), None), 1, "deadline-80s"),
            (admission_rank(Some(80_000), Some(5)), 2, "prioritized"),
            (NO_DEADLINE_RANK_MS, 3, "free-a"),
            (NO_DEADLINE_RANK_MS, 4, "free-b"),
        ];
        let expected = vec![
            "deadline-60s", // 60 000
            "prioritized",  // 80 000 − 5 000 = 75 000
            "deadline-80s", // 80 000
            "free-a",       // no deadline, ordinal 3
            "free-b",       // no deadline, ordinal 4
        ];
        // Deterministic permutation sweep: rotate + swap covers distinct
        // interleavings without randomness.
        for rotation in 0..batch.len() {
            for swap in 0..batch.len() - 1 {
                let mut order = batch.clone();
                order.rotate_left(rotation);
                order.swap(swap, swap + 1);
                let queue = AdmissionQueue::new(8);
                for (rank, ordinal, item) in &order {
                    queue.try_push(*rank, *ordinal, *item).unwrap();
                }
                queue.close();
                assert_eq!(
                    drain(&queue),
                    expected,
                    "served order must not depend on arrival order (rotation {rotation}, swap {swap})"
                );
            }
        }
    }

    #[test]
    fn a_full_queue_reports_its_depth_and_returns_the_item() {
        let queue = AdmissionQueue::new(2);
        queue.try_push(5, 0, "a").unwrap();
        queue.try_push(3, 1, "b").unwrap();
        match queue.try_push(1, 2, "c") {
            Err(PushError::Full { item, depth }) => {
                assert_eq!(item, "c");
                assert_eq!(depth, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(queue.depth(), 2);
        // Popping frees a slot; the freed slot admits again.
        assert_eq!(queue.pop(), Some("b"));
        queue.try_push(1, 3, "c").unwrap();
        queue.close();
        assert_eq!(drain(&queue), vec!["c", "a"]);
    }

    #[test]
    fn close_drains_leftovers_then_signals_exit() {
        let queue = AdmissionQueue::new(4);
        queue.try_push(1, 0, "x").unwrap();
        queue.close();
        match queue.try_push(1, 1, "y") {
            Err(PushError::Closed(item)) => assert_eq!(item, "y"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(queue.pop(), Some("x"), "leftovers still drain");
        assert_eq!(queue.pop(), None, "then the exit signal");
        assert_eq!(queue.pop(), None, "and it stays closed");
    }

    #[test]
    fn blocked_pops_wake_on_push_and_on_close() {
        let queue = std::sync::Arc::new(AdmissionQueue::<u32>::new(4));
        let popper = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // The popper may or may not have blocked yet; the push must wake it
        // either way.
        queue.try_push(7, 0, 42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));

        let waiter = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        queue.close();
        assert_eq!(waiter.join().unwrap(), None, "close wakes blocked pops");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let queue = AdmissionQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(1, 0, "only").unwrap();
        assert!(matches!(
            queue.try_push(1, 1, "over"),
            Err(PushError::Full { depth: 1, .. })
        ));
    }
}
