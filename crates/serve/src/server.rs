//! The `cuasmrld` daemon: a TCP acceptor, a deterministic deadline-aware
//! admission queue and a worker pool multiplexing kernel-optimization
//! requests over the [`SuiteOptimizer`] machinery.
//!
//! Connection lifecycle (protocol v2): the acceptor hands each connection
//! to a reader thread that reads the first frame and *sniffs the protocol
//! by frame shape*. A bare request frame is served in v1 style — one
//! untagged response, connection closed — so every v1 client keeps working
//! byte-for-byte. A tagged frame opens a persistent session: the reader
//! becomes a demultiplexing loop that keeps decoding tagged frames while
//! workers answer each one through a shared writer handle, tagged with the
//! client's `request_id` and possibly out of submission order — a stalled
//! request never blocks an unrelated pipelined one.
//!
//! Request lifecycle: each well-formed optimize request is validated,
//! canonicalized, and answered straight from the [`ScheduleStore`] when
//! the canonical request was served before — repeat traffic never touches
//! the queue. A store miss is admitted into a bounded
//! [`AdmissionQueue`] ordered by [`crate::protocol::admission_rank`]
//! (earliest effective deadline first, `priority` biasing additively,
//! admission ordinal breaking ties) — a deterministic function of the
//! request set, never of wall clock, so replays serve in identical order.
//! When the queue is full the request is rejected immediately with a typed
//! `Busy` error carrying the queue depth (backpressure, not buffering).
//! Workers pop in rank order, re-check the deadline and the store, run the
//! search — through a checkpointing [`SearchSession`] for RL strategies,
//! so a killed daemon warm-restarts mid-training — persist the entry, and
//! reply through the job's responder.
//!
//! Fault tolerance: every in-flight search carries a [`CancelToken`] tied
//! to its deadline and the server-wide drain signal, polled at search
//! boundaries — a request that outlives its deadline is answered with a
//! typed *degraded* best-so-far result (checkpoint persisted, so re-asking
//! resumes and converges to the full answer). Worker job execution is
//! wrapped in `catch_unwind`: a panic is isolated, counted, answered as a
//! sanitized `Internal` error, and the pool survives. A malformed frame
//! mid-session poisons only its `request_id` (a tagged `BadRequest`),
//! never the connection; only framing-level damage — a truncated or
//! stalled frame — closes the session. [`Server::shutdown`] drains
//! gracefully — stop accepting, answer queued work `Busy`, preempt
//! in-flight searches, flush telemetry. A config-gated [`FaultPlan`]
//! injects store failures, panics and stalls at chosen request ordinals so
//! the chaos suite can prove all of this deterministically; ordinals are
//! assigned at admission (arrival order), before any priority reordering,
//! so fault plans stay deterministic under the priority queue.
//!
//! Determinism contract (serving path): the report inside a non-degraded
//! response is bit-identical to a direct [`SuiteOptimizer::optimizer_for`]
//! run for the same canonical request, and two identical requests against
//! the same store state produce byte-identical response frames (modulo the
//! session tag, which echoes the client's own `request_id`). Wall-clock
//! exists only in the telemetry manifest, never in a response.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use cuasmrl::{
    load_run_manifest_checked, persist_run_manifest, CuAsmRl, KernelTelemetry, ManifestError,
    RunManifest, SearchSession, Strategy, SuiteOptimizer,
};
use gpusim::MeasureOptions;
use kernels::KernelSpec;
use rl::CancelToken;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultKind, FaultPlan};
use crate::protocol::{
    poll_frame, read_frame, write_frame, CanonicalRequest, ErrorCode, FrameRead, OptimizeRequest,
    OptimizeResponse, OptimizeResult, RequestBody, RequestDefaults, RequestKey, ServiceError,
    StatusRequest, StatusResult, TaggedRequest, TaggedResponse, UNATTRIBUTED_REQUEST_ID,
};
use crate::queue::{AdmissionQueue, PushError};
use crate::store::{ScheduleStore, StoreEntry, StoreStats, STORE_SCHEMA_VERSION};

/// The manifest suite label the daemon's telemetry is filed under (one
/// manifest per device profile: `{gpu}_service_telemetry.json`).
pub const SERVICE_SUITE_LABEL: &str = "service";

/// How often an idle session reader wakes to check for shutdown/drain.
const SESSION_IDLE_POLL: Duration = Duration::from_millis(100);

/// How long a session peer gets to finish a frame it has started writing.
/// A frame still unfinished past this budget is a wedged or hostile
/// client; the session closes (framing damage is connection-fatal, unlike
/// payload damage, which poisons only its `request_id`).
const SESSION_FRAME_BUDGET: Duration = Duration::from_secs(10);

/// Everything a daemon instance is configured with.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Root of the persistent schedule store (and training checkpoints).
    pub store_dir: PathBuf,
    /// In-memory entry cap of the store.
    pub store_capacity: usize,
    /// Bounded admission-queue depth; a full queue answers `Busy`.
    pub queue_capacity: usize,
    /// Worker threads. `0` is allowed (nothing dequeues) — used by tests to
    /// exercise admission control deterministically.
    pub workers: usize,
    /// Search strategy every request runs (seeded per request).
    pub strategy: Strategy,
    /// Default base seed when a request names none.
    pub seed: u64,
    /// Default paper-shape scale divisor when a request names none.
    pub scale: usize,
    /// PPO updates per [`SearchSession`] step between checkpoints (RL
    /// strategies only). Also the preemption granularity: deadlines and
    /// drain signals are observed between steps.
    pub checkpoint_updates: usize,
    /// Measurement protocol used while autotuning.
    pub tune_options: MeasureOptions,
    /// Assembly-game configuration.
    pub game_config: cuasmrl::GameConfig,
    /// Deterministic fault injection for chaos testing; `None` (the
    /// default) leaves every fault path inactive.
    pub fault_plan: Option<FaultPlan>,
}

impl ServerConfig {
    /// A conservative default configuration rooted at `store_dir`.
    #[must_use]
    pub fn new(store_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            store_capacity: 64,
            queue_capacity: 32,
            workers: 2,
            strategy: Strategy::Greedy { max_moves: 8 },
            seed: 0,
            scale: 1,
            checkpoint_updates: 1,
            tune_options: MeasureOptions::default(),
            game_config: cuasmrl::GameConfig::default(),
            fault_plan: None,
        }
    }

    /// The server-side fallbacks for optional request fields.
    #[must_use]
    pub fn defaults(&self) -> RequestDefaults {
        RequestDefaults {
            scale: self.scale,
            seed: self.seed,
        }
    }

    /// The [`SuiteOptimizer`] a request resolving to `gpu`/`seed` is served
    /// through. Exported so tests (and any other consumer) can reproduce a
    /// daemon answer with a direct run: the byte-identity contract is this
    /// shared constructor, not a parallel reimplementation.
    #[must_use]
    pub fn suite_optimizer(&self, gpu: gpusim::GpuConfig, seed: u64) -> SuiteOptimizer {
        SuiteOptimizer::new(gpu, self.strategy.clone())
            .with_seed(seed)
            .with_tune_options(self.tune_options.clone())
            .with_game_config(self.game_config.clone())
    }
}

/// Aggregate request counters of a running daemon, also served over the
/// wire in a [`StatusResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Frames that parsed into a well-formed optimize request.
    pub requests: u64,
    /// Requests answered from the schedule store.
    pub store_hits: u64,
    /// Requests that ran a fresh search to completion.
    pub computed: u64,
    /// Requests rejected by admission control (`Busy`), including queued
    /// work answered `Busy` during a drain.
    pub busy: u64,
    /// Requests rejected before admission (`BadRequest` /
    /// `UnsupportedVersion`), including malformed session frames poisoned
    /// by `request_id`.
    pub rejected: u64,
    /// Requests whose deadline expired while still queued.
    pub deadline_expired: u64,
    /// In-flight searches preempted by a deadline or drain signal.
    pub preempted: u64,
    /// Degraded (best-so-far) answers sent for preempted searches.
    pub degraded: u64,
    /// Worker panics isolated by `catch_unwind` (the pool survived each).
    pub worker_panics: u64,
    /// Status probes answered.
    pub status_served: u64,
    /// Faults injected by the configured [`FaultPlan`].
    pub injected_faults: u64,
    /// Content-checksum failures healed while serving: store entries that
    /// failed [`StoreEntry`]'s checksum on a lookup (healed by recompute)
    /// plus telemetry manifests that failed theirs at startup seeding
    /// (healed by rebuild). A nonzero count on a fault-free run means the
    /// disk is silently corrupting data — see the SERVICE.md runbook.
    /// Additive since durability v2 (`#[serde(default)]`): stats from an
    /// older daemon decode as 0.
    #[serde(default)]
    pub checksum_failures: u64,
}

/// Where a job's answer goes: back onto a v1 one-shot stream, or tagged
/// with the client's `request_id` through a session's shared writer (many
/// in-flight jobs hold clones of the same writer, so pipelined responses
/// interleave safely and out of order).
enum Responder {
    /// v1 single-exchange: the response is the untagged frame, then the
    /// connection closes (the stream drops with the job).
    V1(TcpStream),
    /// v2 session: the response is a [`TaggedResponse`] frame written
    /// under the session's writer lock.
    V2 {
        writer: Arc<Mutex<TcpStream>>,
        request_id: u64,
    },
}

impl Responder {
    /// Best-effort reply — the peer may already be gone, and a failed
    /// write must never take a worker down.
    fn send(&mut self, response: &OptimizeResponse) {
        match self {
            Responder::V1(stream) => Shared::respond(stream, response),
            Responder::V2 { writer, request_id } => {
                let tagged = TaggedResponse {
                    request_id: *request_id,
                    response: response.clone(),
                };
                if let Ok(payload) = serde_json::to_string(&tagged) {
                    let mut stream = writer.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ = write_frame(&mut *stream, payload.as_bytes());
                }
            }
        }
    }

    fn send_error(&mut self, error: ServiceError) {
        self.send(&OptimizeResponse::Err(error));
    }
}

struct Job {
    responder: Responder,
    canonical: CanonicalRequest,
    key: RequestKey,
    deadline_ms: Option<u64>,
    /// The request's `protocol_version`, echoed in the answer.
    wire_version: u32,
    admitted: Instant,
    /// 0-based index in the daemon's sequence of well-formed optimize
    /// requests — the [`FaultPlan`] key. Assigned at admission in arrival
    /// order, *before* priority reordering, so fault plans fire at the
    /// same requests whatever order the queue serves them in.
    ordinal: u64,
}

struct Shared {
    config: ServerConfig,
    store: ScheduleStore,
    queue: AdmissionQueue<Job>,
    shutdown: AtomicBool,
    /// The server-wide drain signal; every in-flight search holds a child
    /// of this token.
    drain: CancelToken,
    stats: Mutex<ServiceStats>,
    telemetry: Mutex<std::collections::HashMap<String, Vec<KernelTelemetry>>>,
}

impl Shared {
    /// Stats access that survives a poisoned mutex: a worker panic between
    /// lock and unlock must not take the counters (or any thread that reads
    /// them) down with it — the counts themselves are always consistent
    /// because each update is a single field increment.
    fn lock_stats(&self) -> MutexGuard<'_, ServiceStats> {
        self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_telemetry(
        &self,
    ) -> MutexGuard<'_, std::collections::HashMap<String, Vec<KernelTelemetry>>> {
        self.telemetry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn draining(&self) -> bool {
        self.drain.is_cancelled()
    }

    fn respond(stream: &mut TcpStream, response: &OptimizeResponse) {
        if let Ok(payload) = serde_json::to_string(response) {
            let _ = write_frame(stream, payload.as_bytes());
        }
        let _ = stream.flush();
    }

    fn respond_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) {
        Self::respond(
            stream,
            &OptimizeResponse::Err(ServiceError::new(code, message)),
        );
    }

    fn result_from_entry(
        key: &RequestKey,
        entry: &StoreEntry,
        from_store: bool,
        wire_version: u32,
    ) -> OptimizeResult {
        OptimizeResult {
            protocol_version: wire_version,
            arch: entry.arch.clone(),
            kernel: entry.kernel.clone(),
            request_key: key.digest.clone(),
            from_store,
            degraded: false,
            report: entry.report.clone(),
        }
    }

    /// The live counters served to a [`StatusRequest`], echoing the
    /// probe's wire version.
    fn status(&self, wire_version: u32) -> StatusResult {
        StatusResult {
            protocol_version: wire_version,
            stats: *self.lock_stats(),
            store: self.store.stats(),
            workers: self.config.workers,
            queue_capacity: self.config.queue_capacity,
            queue_depth: self.queue.depth(),
            draining: self.draining(),
        }
    }

    /// The fault scheduled for request `ordinal`, with the injection
    /// counter bumped — `None` when no plan is configured or the plan has
    /// nothing for this ordinal.
    fn fault_for(&self, ordinal: u64) -> Option<FaultKind> {
        let kind = self.config.fault_plan.as_ref()?.fault_at(ordinal)?.clone();
        self.lock_stats().injected_faults += 1;
        Some(kind)
    }

    /// Store lookup honoring injected store faults: a scheduled
    /// `StoreReadError`/`StoreCorrupt` for this ordinal makes the lookup
    /// fail exactly as a real disk error or corrupt entry would — the
    /// caller recomputes, which is the recovery path either way.
    fn store_get(&self, key: &RequestKey, fault: Option<&FaultKind>) -> Option<StoreEntry> {
        match fault {
            Some(FaultKind::StoreReadError) => {
                eprintln!("cuasmrld: injected store read error for {}", key.digest);
                return None;
            }
            Some(FaultKind::StoreCorrupt) => {
                eprintln!("cuasmrld: injected corrupt store entry for {}", key.digest);
                return None;
            }
            _ => {}
        }
        match self.store.get(key) {
            Ok(entry) => entry,
            Err(err) => {
                // A damaged entry is a miss with a warning: the recompute
                // overwrites the bad file, which is the recovery path.
                // Checksum mismatches are the silent-corruption signal and
                // get their own service-level counter on top of the
                // store's.
                if matches!(err, crate::store::StoreError::ChecksumMismatch { .. }) {
                    self.lock_stats().checksum_failures += 1;
                }
                eprintln!("cuasmrld: {err}; recomputing");
                None
            }
        }
    }

    /// Folds one kernel's telemetry into the per-device service manifest
    /// and persists it next to the store entries. The first fold for a
    /// device seeds from the manifest a previous run persisted, so a
    /// restarted daemon keeps accumulating instead of silently zeroing
    /// history.
    fn record_telemetry(&self, gpu: &str, kernel: KernelTelemetry) {
        let mut per_gpu = self.lock_telemetry();
        if !per_gpu.contains_key(gpu) {
            let seeded = self.seed_telemetry(gpu);
            per_gpu.insert(gpu.to_string(), seeded);
        }
        let kernels = per_gpu.entry(gpu.to_string()).or_default();
        kernels.push(kernel);
        let kernels = kernels.clone();
        drop(per_gpu);
        self.persist_manifest(gpu, &kernels);
    }

    /// The kernels a previous run already persisted for `gpu`. A corrupt
    /// or checksum-failing manifest is skipped and rebuilt from scratch —
    /// never a panic, never a silent zero: the damage is logged, and a
    /// checksum catch counts into [`ServiceStats::checksum_failures`].
    fn seed_telemetry(&self, gpu: &str) -> Vec<KernelTelemetry> {
        match load_run_manifest_checked(&self.config.store_dir, gpu, SERVICE_SUITE_LABEL) {
            Ok(Some(manifest)) => manifest.kernels,
            Ok(None) => Vec::new(),
            Err(err) => {
                if matches!(err, ManifestError::ChecksumMismatch { .. }) {
                    self.lock_stats().checksum_failures += 1;
                }
                eprintln!("cuasmrld: telemetry manifest for {gpu} is damaged ({err}); rebuilding");
                Vec::new()
            }
        }
    }

    fn persist_manifest(&self, gpu: &str, kernels: &[KernelTelemetry]) {
        let log_sum: f64 = kernels.iter().map(|k| k.speedup.max(1e-12).ln()).sum();
        let geomean = (log_sum / kernels.len().max(1) as f64).exp();
        let manifest = RunManifest::new(
            gpu,
            SERVICE_SUITE_LABEL,
            self.config.strategy.name(),
            self.config.seed,
            self.config.workers,
            kernels.to_vec(),
            geomean,
        );
        if let Err(err) = persist_run_manifest(&self.config.store_dir, &manifest) {
            eprintln!("cuasmrld: failed to persist telemetry manifest: {err}");
        }
    }

    /// Re-persists every device's telemetry manifest — the drain-time flush
    /// that guarantees nothing recorded is lost even if an earlier
    /// incremental persist failed transiently.
    fn flush_telemetry(&self) {
        let per_gpu = self.lock_telemetry().clone();
        for (gpu, kernels) in &per_gpu {
            if !kernels.is_empty() {
                self.persist_manifest(gpu, kernels);
            }
        }
    }
}

/// A running daemon. Dropping it without [`Server::shutdown`] detaches the
/// threads (the process exit reaps them); tests call `shutdown` for an
/// orderly stop.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the store, binds the listener and spawns the acceptor and
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the store cannot be opened or the address
    /// cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let store = ScheduleStore::open(&config.store_dir, config.store_capacity)
            .map_err(|err| std::io::Error::other(err.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let queue = AdmissionQueue::new(config.queue_capacity);
        let shared = Arc::new(Shared {
            config,
            store,
            queue,
            shutdown: AtomicBool::new(false),
            drain: CancelToken::new(),
            stats: Mutex::new(ServiceStats::default()),
            telemetry: Mutex::new(std::collections::HashMap::new()),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current request counters. Never panics: the accessor recovers a
    /// poisoned mutex (single-field increments keep the counters consistent
    /// through any panic).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        *self.shared.lock_stats()
    }

    /// Current store counters.
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.shared.store.stats()
    }

    /// Requests currently waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Graceful drain: stop accepting, answer everything still queued with
    /// `Busy`, preempt in-flight searches through the drain token (their
    /// training checkpoints are persisted, and their clients receive typed
    /// degraded best-so-far answers), flush the telemetry manifests, and
    /// join every thread. Open v2 sessions stop reading (their pending
    /// answers are still written before the connection drops). A
    /// subsequent daemon on the same store directory warm-restarts the
    /// preempted searches from their checkpoints. Returns the final
    /// request counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.drain.cancel();
        // Wake the acceptor out of accept() with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.flush_telemetry();
        *self.shared.lock_stats()
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    // One reader thread per connection: short-lived for v1 exchanges,
    // session-long for v2. A client that stalls mid-frame (or never
    // finishes its write) ties up only its own thread, never the acceptor —
    // other connections keep flowing.
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for connection in listener.incoming() {
        readers.retain(|handle| !handle.is_finished());
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = connection else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let shared = Arc::clone(shared);
        readers.push(std::thread::spawn(move || {
            serve_connection(&shared, stream)
        }));
    }
    for handle in readers {
        let _ = handle.join();
    }
    // No more pushes can happen once every reader has exited; closing the
    // queue lets workers drain the leftovers (answered `Busy` mid-drain)
    // and exit.
    shared.queue.close();
}

/// First contact with a connection: read the first frame and sniff the
/// protocol by its shape. A tagged frame opens a persistent v2 session;
/// a bare frame gets the v1 single-exchange treatment and the connection
/// closes after one answer.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let frame = match read_frame(&mut stream) {
        Ok(frame) => frame,
        Err(err) => {
            // Covers truncated prefixes, half frames and oversized lengths:
            // the reply is best-effort (the peer may already be gone) and
            // the connection closes cleanly either way.
            Shared::respond_error(
                &mut stream,
                ErrorCode::BadRequest,
                format!("malformed frame: {err}"),
            );
            return;
        }
    };
    let text = match std::str::from_utf8(&frame) {
        Ok(text) => text,
        Err(err) => {
            Shared::respond_error(
                &mut stream,
                ErrorCode::BadRequest,
                format!("invalid request JSON: {err}"),
            );
            return;
        }
    };
    if let Ok(tagged) = serde_json::from_str::<TaggedRequest>(text) {
        serve_session(shared, stream, tagged);
        return;
    }
    // v1 single exchange. Status probes are detected by their required
    // `query` field, answered at admission and never queued — they work
    // even under saturation or mid-drain.
    if let Ok(status) = serde_json::from_str::<StatusRequest>(text) {
        match status.validate() {
            Ok(()) => {
                shared.lock_stats().status_served += 1;
                Shared::respond(
                    &mut stream,
                    &OptimizeResponse::Status(shared.status(status.protocol_version)),
                );
            }
            Err(error) => {
                shared.lock_stats().rejected += 1;
                Shared::respond(&mut stream, &OptimizeResponse::Err(error));
            }
        }
        return;
    }
    let request: OptimizeRequest = match serde_json::from_str(text) {
        Ok(request) => request,
        Err(err) => {
            Shared::respond_error(
                &mut stream,
                ErrorCode::BadRequest,
                format!("invalid request JSON: {err}"),
            );
            return;
        }
    };
    process_optimize(shared, &request, Responder::V1(stream));
}

/// The persistent-session read loop: demultiplex tagged frames into
/// admission until the peer closes, framing breaks, or the daemon drains.
/// Responses travel through the shared `writer` handle — workers hold
/// clones of it inside queued jobs, so the loop never waits on a response
/// and a stalled request never blocks the next frame.
fn serve_session(shared: &Shared, mut stream: TcpStream, first: TaggedRequest) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(writer));
    handle_tagged(shared, &writer, first);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || shared.draining() {
            // Stop reading; queued jobs still hold writer clones, so
            // pending answers (including drain-time `Busy`) are written
            // before the connection finally drops.
            return;
        }
        match poll_frame(&mut stream, SESSION_IDLE_POLL, SESSION_FRAME_BUDGET) {
            Ok(FrameRead::Frame(payload)) => handle_session_frame(shared, &writer, &payload),
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Closed) | Err(_) => return,
        }
    }
}

/// Probe for salvaging the `request_id` out of a frame that failed to
/// decode as a [`TaggedRequest`] — so a malformed body poisons exactly the
/// request it belongs to.
#[derive(Deserialize)]
struct IdProbe {
    #[serde(default)]
    request_id: Option<u64>,
}

/// One well-framed session payload: decode, or poison only the offending
/// `request_id` with a tagged `BadRequest` — never the connection.
fn handle_session_frame(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, payload: &[u8]) {
    let poisoned = |message: String| -> (u64, String) { (UNATTRIBUTED_REQUEST_ID, message) };
    let (request_id, message) = match std::str::from_utf8(payload) {
        Err(err) => poisoned(format!("invalid request JSON: {err}")),
        Ok(text) => match serde_json::from_str::<TaggedRequest>(text) {
            Ok(tagged) => {
                handle_tagged(shared, writer, tagged);
                return;
            }
            Err(err) => (
                // The frame is not a tagged request, but its id may still
                // parse: answer *that* request id so the client can fail
                // exactly one call.
                serde_json::from_str::<IdProbe>(text)
                    .ok()
                    .and_then(|probe| probe.request_id)
                    .unwrap_or(UNATTRIBUTED_REQUEST_ID),
                format!("invalid session frame: {err}"),
            ),
        },
    };
    shared.lock_stats().rejected += 1;
    let mut responder = Responder::V2 {
        writer: Arc::clone(writer),
        request_id,
    };
    responder.send_error(ServiceError::new(ErrorCode::BadRequest, message));
}

/// Routes one decoded tagged request: status probes are answered inline,
/// optimize requests go through admission with a tagged responder.
fn handle_tagged(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, tagged: TaggedRequest) {
    let mut responder = Responder::V2 {
        writer: Arc::clone(writer),
        request_id: tagged.request_id,
    };
    match tagged.body {
        RequestBody::Status(probe) => match probe.validate() {
            Ok(()) => {
                shared.lock_stats().status_served += 1;
                responder.send(&OptimizeResponse::Status(
                    shared.status(probe.protocol_version),
                ));
            }
            Err(error) => {
                shared.lock_stats().rejected += 1;
                responder.send_error(error);
            }
        },
        RequestBody::Optimize(request) => process_optimize(shared, &request, responder),
    }
}

/// Everything that happens to an optimize request before a worker sees
/// it, shared by both connection modes: ordinal assignment, validation,
/// store lookup, admission control. The responder carries the answer back
/// whichever mode the request arrived in.
fn process_optimize(shared: &Shared, request: &OptimizeRequest, mut responder: Responder) {
    let ordinal = {
        let mut stats = shared.lock_stats();
        stats.requests += 1;
        stats.requests - 1
    };
    let canonical = match request.canonicalize(&shared.config.defaults()) {
        Ok(canonical) => canonical,
        Err(error) => {
            shared.lock_stats().rejected += 1;
            responder.send_error(error);
            return;
        }
    };
    let wire_version = request.protocol_version;
    let key = RequestKey::of(&canonical);
    let fault = shared.fault_for(ordinal);
    if let Some(entry) = shared.store_get(&key, fault.as_ref()) {
        shared.lock_stats().store_hits += 1;
        shared.record_telemetry(&canonical.gpu.name, store_hit_telemetry(&entry));
        responder.send(&OptimizeResponse::Ok(Shared::result_from_entry(
            &key,
            &entry,
            true,
            wire_version,
        )));
        return;
    }
    if shared.draining() {
        shared.lock_stats().busy += 1;
        responder.send_error(ServiceError::new(
            ErrorCode::Busy,
            "server is draining; retry after it restarts",
        ));
        return;
    }
    let rank = request.rank();
    let job = Job {
        responder,
        canonical,
        key,
        deadline_ms: request.deadline_ms,
        wire_version,
        admitted: Instant::now(),
        ordinal,
    };
    match shared.queue.try_push(rank, ordinal, job) {
        Ok(()) => {}
        Err(PushError::Full {
            item: mut job,
            depth,
        }) => {
            shared.lock_stats().busy += 1;
            job.responder.send_error(
                ServiceError::new(
                    ErrorCode::Busy,
                    format!("admission queue is full ({depth} pending); retry later"),
                )
                .with_queue_depth(depth),
            );
        }
        Err(PushError::Closed(mut job)) => {
            shared.lock_stats().busy += 1;
            job.responder.send_error(ServiceError::new(
                ErrorCode::Busy,
                "server is shutting down",
            ));
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(mut job) = shared.queue.pop() {
        // Panic isolation: whatever `handle_job` does — including an
        // injected panic — the worker thread survives, the client gets a
        // sanitized typed error, and the pool keeps serving.
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_job(shared, &mut job)));
        if outcome.is_err() {
            shared.lock_stats().worker_panics += 1;
            job.responder.send_error(ServiceError::new(
                ErrorCode::Internal,
                "internal error: the worker handling this request failed and was recovered; \
                 retrying is safe",
            ));
        }
    }
}

/// One dequeued job, start to reply. Runs inside the worker's
/// `catch_unwind` boundary.
fn handle_job(shared: &Shared, job: &mut Job) {
    let fault = shared.fault_for(job.ordinal);
    if let Some(FaultKind::WorkerPanic) = fault {
        panic!("injected worker panic (request ordinal {})", job.ordinal);
    }
    if shared.draining() {
        // Drain: everything still queued is answered Busy instead of being
        // computed — the store keeps no half answers, the client retries
        // against the restarted daemon.
        shared.lock_stats().busy += 1;
        job.responder.send_error(ServiceError::new(
            ErrorCode::Busy,
            "server is draining; retry after it restarts",
        ));
        return;
    }
    if let Some(deadline_ms) = job.deadline_ms {
        let waited = job.admitted.elapsed().as_millis() as u64;
        if waited >= deadline_ms {
            shared.lock_stats().deadline_expired += 1;
            job.responder.send_error(ServiceError::new(
                ErrorCode::DeadlineExceeded,
                format!("deadline of {deadline_ms} ms expired while queued"),
            ));
            return;
        }
    }
    // Another worker may have computed the same canonical request while
    // this one was queued: serve the stored answer.
    if let Some(entry) = shared.store_get(&job.key, fault.as_ref()) {
        shared.lock_stats().store_hits += 1;
        shared.record_telemetry(&job.canonical.gpu.name, store_hit_telemetry(&entry));
        let result = Shared::result_from_entry(&job.key, &entry, true, job.wire_version);
        job.responder.send(&OptimizeResponse::Ok(result));
        return;
    }
    // The per-job token: fires on the request deadline or the server-wide
    // drain, whichever comes first.
    let mut cancel = shared.drain.child();
    if let Some(deadline_ms) = job.deadline_ms {
        cancel = cancel.with_deadline(job.admitted + Duration::from_millis(deadline_ms));
    }
    if let Some(FaultKind::SlowWorker { stall_ms }) = fault {
        // Injected stall, sliced so a fired token (deadline or drain) cuts
        // it short — exactly like a real wedged measurement would resolve.
        let stall_until = Instant::now() + Duration::from_millis(stall_ms);
        while Instant::now() < stall_until && !cancel.is_cancelled() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    match compute(shared, &job.canonical, &job.key, &cancel) {
        Ok((report, telemetry, false)) => {
            let entry = StoreEntry {
                schema_version: STORE_SCHEMA_VERSION,
                canonical: job.key.canonical.clone(),
                arch: job.key.arch.clone(),
                kernel: job.key.kernel.clone(),
                seed: job.canonical.seed,
                generation: 0, // stamped by the store's put()
                checksum: String::new(),
                report,
            }
            .seal();
            if let Err(err) = shared.store.put(&job.key, entry.clone()) {
                eprintln!("cuasmrld: failed to persist store entry: {err}");
            }
            shared.lock_stats().computed += 1;
            shared.record_telemetry(&job.canonical.gpu.name, telemetry);
            let result = Shared::result_from_entry(&job.key, &entry, false, job.wire_version);
            job.responder.send(&OptimizeResponse::Ok(result));
        }
        Ok((report, telemetry, true)) => {
            // Preempted: the degraded best-so-far answer goes to the client
            // but never into the schedule store — the persisted checkpoint
            // is the artifact that survives, and a re-ask resumes from it.
            {
                let mut stats = shared.lock_stats();
                stats.preempted += 1;
                stats.degraded += 1;
            }
            shared.record_telemetry(&job.canonical.gpu.name, telemetry);
            let result = OptimizeResult {
                protocol_version: job.wire_version,
                arch: job.key.arch.clone(),
                kernel: job.key.kernel.clone(),
                request_key: job.key.digest.clone(),
                from_store: false,
                degraded: true,
                report,
            };
            job.responder.send(&OptimizeResponse::Ok(result));
        }
        Err(message) => {
            job.responder
                .send_error(ServiceError::new(ErrorCode::Internal, message));
        }
    }
}

/// The telemetry record of a store-hit answer: the persisted report's
/// figures with the `from_deploy_cache` marker and no fresh phase timings.
fn store_hit_telemetry(entry: &StoreEntry) -> KernelTelemetry {
    KernelTelemetry {
        kernel: entry.report.kernel.clone(),
        baseline_us: entry.report.baseline_us,
        optimized_us: entry.report.optimized_us,
        speedup: entry.report.speedup,
        verified: entry.report.verified,
        from_deploy_cache: true,
        reward_curve: entry.report.moves.iter().map(|m| m.reward).collect(),
        ..KernelTelemetry::default()
    }
}

/// Runs the search for one canonical request under a cancel token. RL
/// strategies go through a checkpointing [`SearchSession`] keyed by the
/// request (warm restart); everything else runs the one-shot instrumented
/// path. Both paths produce reports bit-identical to a direct
/// [`SuiteOptimizer::optimizer_for`] run — unless the token preempts the
/// search, in which case the returned flag is `true` and the report is the
/// degraded best-so-far answer (for RL, with the training checkpoint left
/// on disk for a later resume).
fn compute(
    shared: &Shared,
    canonical: &CanonicalRequest,
    key: &RequestKey,
    cancel: &CancelToken,
) -> Result<(cuasmrl::OptimizationReport, KernelTelemetry, bool), String> {
    let suite = shared
        .config
        .suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer: CuAsmRl = suite.optimizer_for(&canonical.spec);
    let spec: &KernelSpec = &canonical.spec;
    let space = suite.config_space_for(spec);
    if optimizer.rl_config().is_none() {
        let (report, telemetry, preempted) = suite.optimize_spec_preemptible(spec, cancel);
        return Ok((report, telemetry, preempted));
    }
    let checkpoint = shared.store.checkpoint_path(key);
    let mut session = match SearchSession::new(
        optimizer.clone(),
        spec,
        &space,
        suite.tune_options(),
        &checkpoint,
    ) {
        Ok(session) => session,
        Err(err) => {
            // A damaged or version-skewed checkpoint must not wedge the
            // request forever: discard it and cold-start once.
            eprintln!(
                "cuasmrld: discarding unusable checkpoint {}: {err}",
                checkpoint.display()
            );
            let _ = std::fs::remove_file(&checkpoint);
            SearchSession::new(optimizer, spec, &space, suite.tune_options(), &checkpoint)
                .map_err(|err| format!("search session failed to start: {err}"))?
        }
    };
    loop {
        let finished = session
            .step_until(shared.config.checkpoint_updates.max(1), cancel)
            .map_err(|err| format!("training checkpoint failed: {err}"))?;
        if finished {
            break;
        }
        if cancel.is_cancelled() {
            // Preempted at an update boundary: the checkpoint written by
            // `step_until` is on disk; answer with the best-so-far.
            let (report, telemetry) = session.finish_preempted();
            return Ok((report, telemetry, true));
        }
    }
    let (report, _cubin, telemetry) = session.finish();
    Ok((report, telemetry, false))
}
