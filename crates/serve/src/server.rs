//! The `cuasmrld` daemon: a TCP acceptor, a bounded admission queue and a
//! worker pool multiplexing kernel-optimization requests over the
//! [`SuiteOptimizer`] machinery.
//!
//! Request lifecycle: the acceptor reads one frame, validates and
//! canonicalizes it, and answers straight from the [`ScheduleStore`] when
//! the canonical request was served before — repeat traffic never touches
//! the queue. A store miss is admitted into a bounded queue
//! ([`ServerConfig::queue_capacity`]); when the queue is full the request
//! is rejected immediately with a typed `Busy` error (backpressure, not
//! buffering). Workers dequeue, re-check the deadline and the store, run
//! the search — through a checkpointing [`SearchSession`] for RL
//! strategies, so a killed daemon warm-restarts mid-training — persist the
//! entry, and reply.
//!
//! Determinism contract (serving path): the report inside a response is
//! bit-identical to a direct [`SuiteOptimizer::optimizer_for`] run for the
//! same canonical request, and two identical requests against the same
//! store state produce byte-identical response frames. Wall-clock exists
//! only in the telemetry manifest, never in a response.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cuasmrl::{
    persist_run_manifest, CuAsmRl, KernelTelemetry, RunManifest, SearchSession, Strategy,
    SuiteOptimizer,
};
use gpusim::MeasureOptions;
use kernels::KernelSpec;

use crate::protocol::{
    read_frame, write_frame, CanonicalRequest, ErrorCode, OptimizeRequest, OptimizeResponse,
    OptimizeResult, RequestDefaults, RequestKey, ServiceError, PROTOCOL_VERSION,
};
use crate::store::{ScheduleStore, StoreEntry, StoreStats, STORE_SCHEMA_VERSION};

/// The manifest suite label the daemon's telemetry is filed under (one
/// manifest per device profile: `{gpu}_service_telemetry.json`).
pub const SERVICE_SUITE_LABEL: &str = "service";

/// Everything a daemon instance is configured with.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Root of the persistent schedule store (and training checkpoints).
    pub store_dir: PathBuf,
    /// In-memory entry cap of the store.
    pub store_capacity: usize,
    /// Bounded admission-queue depth; a full queue answers `Busy`.
    pub queue_capacity: usize,
    /// Worker threads. `0` is allowed (nothing dequeues) — used by tests to
    /// exercise admission control deterministically.
    pub workers: usize,
    /// Search strategy every request runs (seeded per request).
    pub strategy: Strategy,
    /// Default base seed when a request names none.
    pub seed: u64,
    /// Default paper-shape scale divisor when a request names none.
    pub scale: usize,
    /// PPO updates per [`SearchSession`] step between checkpoints (RL
    /// strategies only).
    pub checkpoint_updates: usize,
    /// Measurement protocol used while autotuning.
    pub tune_options: MeasureOptions,
    /// Assembly-game configuration.
    pub game_config: cuasmrl::GameConfig,
}

impl ServerConfig {
    /// A conservative default configuration rooted at `store_dir`.
    #[must_use]
    pub fn new(store_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            store_capacity: 64,
            queue_capacity: 32,
            workers: 2,
            strategy: Strategy::Greedy { max_moves: 8 },
            seed: 0,
            scale: 1,
            checkpoint_updates: 1,
            tune_options: MeasureOptions::default(),
            game_config: cuasmrl::GameConfig::default(),
        }
    }

    /// The server-side fallbacks for optional request fields.
    #[must_use]
    pub fn defaults(&self) -> RequestDefaults {
        RequestDefaults {
            scale: self.scale,
            seed: self.seed,
        }
    }

    /// The [`SuiteOptimizer`] a request resolving to `gpu`/`seed` is served
    /// through. Exported so tests (and any other consumer) can reproduce a
    /// daemon answer with a direct run: the byte-identity contract is this
    /// shared constructor, not a parallel reimplementation.
    #[must_use]
    pub fn suite_optimizer(&self, gpu: gpusim::GpuConfig, seed: u64) -> SuiteOptimizer {
        SuiteOptimizer::new(gpu, self.strategy.clone())
            .with_seed(seed)
            .with_tune_options(self.tune_options.clone())
            .with_game_config(self.game_config.clone())
    }
}

/// Aggregate request counters of a running daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Frames that parsed into a well-formed request.
    pub requests: u64,
    /// Requests answered from the schedule store.
    pub store_hits: u64,
    /// Requests that ran a fresh search.
    pub computed: u64,
    /// Requests rejected by admission control (`Busy`).
    pub busy: u64,
    /// Requests rejected before admission (`BadRequest` /
    /// `UnsupportedVersion`).
    pub rejected: u64,
    /// Requests whose deadline expired while queued.
    pub deadline_expired: u64,
}

struct Job {
    stream: TcpStream,
    canonical: CanonicalRequest,
    key: RequestKey,
    deadline_ms: Option<u64>,
    admitted: Instant,
}

struct Shared {
    config: ServerConfig,
    store: ScheduleStore,
    shutdown: AtomicBool,
    stats: Mutex<ServiceStats>,
    telemetry: Mutex<std::collections::HashMap<String, Vec<KernelTelemetry>>>,
}

impl Shared {
    fn respond(stream: &mut TcpStream, response: &OptimizeResponse) {
        if let Ok(payload) = serde_json::to_string(response) {
            let _ = write_frame(stream, payload.as_bytes());
        }
        let _ = stream.flush();
    }

    fn respond_error(stream: &mut TcpStream, code: ErrorCode, message: impl Into<String>) {
        Self::respond(
            stream,
            &OptimizeResponse::Err(ServiceError {
                code,
                message: message.into(),
            }),
        );
    }

    fn result_from_entry(key: &RequestKey, entry: &StoreEntry, from_store: bool) -> OptimizeResult {
        OptimizeResult {
            protocol_version: PROTOCOL_VERSION,
            arch: entry.arch.clone(),
            kernel: entry.kernel.clone(),
            request_key: key.digest.clone(),
            from_store,
            report: entry.report.clone(),
        }
    }

    /// Folds one kernel's telemetry into the per-device service manifest
    /// and persists it next to the store entries.
    fn record_telemetry(&self, gpu: &str, kernel: KernelTelemetry) {
        let mut per_gpu = self.telemetry.lock().expect("telemetry mutex");
        let kernels = per_gpu.entry(gpu.to_string()).or_default();
        kernels.push(kernel);
        let log_sum: f64 = kernels.iter().map(|k| k.speedup.max(1e-12).ln()).sum();
        let geomean = (log_sum / kernels.len() as f64).exp();
        let manifest = RunManifest::new(
            gpu,
            SERVICE_SUITE_LABEL,
            self.config.strategy.name(),
            self.config.seed,
            self.config.workers,
            kernels.clone(),
            geomean,
        );
        if let Err(err) = persist_run_manifest(&self.config.store_dir, &manifest) {
            eprintln!("cuasmrld: failed to persist telemetry manifest: {err}");
        }
    }
}

/// A running daemon. Dropping it without [`Server::shutdown`] detaches the
/// threads (the process exit reaps them); tests call `shutdown` for an
/// orderly stop.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    // Keeps the queue alive even with `workers == 0` (admission control
    // must answer `Busy`, not "disconnected", when nothing dequeues).
    _queue: Arc<Mutex<Receiver<Job>>>,
}

impl Server {
    /// Opens the store, binds the listener and spawns the acceptor and
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Returns an IO error when the store cannot be opened or the address
    /// cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let store = ScheduleStore::open(&config.store_dir, config.store_capacity)
            .map_err(|err| std::io::Error::other(err.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            config,
            store,
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServiceStats::default()),
            telemetry: Mutex::new(std::collections::HashMap::new()),
        });
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };
        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            _queue: rx,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current request counters.
    ///
    /// # Panics
    ///
    /// Panics if the stats mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        *self.shared.stats.lock().expect("stats mutex")
    }

    /// Current store counters.
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.shared.store.stats()
    }

    /// Orderly stop: refuse new connections, let workers finish queued
    /// jobs, join every thread. In-flight RL training is checkpointed at
    /// the next update boundary by the session itself, so a subsequent
    /// daemon warm-restarts from where this one stopped.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept() with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<Job>) {
    for connection in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = connection else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        admit(shared, stream, tx);
    }
    // Dropping `tx` here closes the queue; workers drain and exit.
}

/// Everything that happens to a connection before a worker sees it: frame
/// read, parse, canonicalize, store lookup, admission control.
fn admit(shared: &Shared, mut stream: TcpStream, tx: &SyncSender<Job>) {
    let frame = match read_frame(&mut stream) {
        Ok(frame) => frame,
        Err(err) => {
            Shared::respond_error(
                &mut stream,
                ErrorCode::BadRequest,
                format!("malformed frame: {err}"),
            );
            return;
        }
    };
    let request: OptimizeRequest = match std::str::from_utf8(&frame)
        .map_err(|err| err.to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|err| err.to_string()))
    {
        Ok(request) => request,
        Err(detail) => {
            Shared::respond_error(
                &mut stream,
                ErrorCode::BadRequest,
                format!("invalid request JSON: {detail}"),
            );
            return;
        }
    };
    shared.stats.lock().expect("stats mutex").requests += 1;
    let canonical = match request.canonicalize(&shared.config.defaults()) {
        Ok(canonical) => canonical,
        Err(error) => {
            shared.stats.lock().expect("stats mutex").rejected += 1;
            Shared::respond(&mut stream, &OptimizeResponse::Err(error));
            return;
        }
    };
    let key = RequestKey::of(&canonical);
    match shared.store.get(&key) {
        Ok(Some(entry)) => {
            shared.stats.lock().expect("stats mutex").store_hits += 1;
            shared.record_telemetry(&canonical.gpu.name, store_hit_telemetry(&entry));
            Shared::respond(
                &mut stream,
                &OptimizeResponse::Ok(Shared::result_from_entry(&key, &entry, true)),
            );
            return;
        }
        Ok(None) => {}
        Err(err) => {
            // A damaged entry is a miss with a warning: the recompute below
            // overwrites the bad file, which is the recovery path.
            eprintln!("cuasmrld: {err}; recomputing");
        }
    }
    let job = Job {
        stream,
        canonical,
        key,
        deadline_ms: request.deadline_ms,
        admitted: Instant::now(),
    };
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(mut job)) => {
            shared.stats.lock().expect("stats mutex").busy += 1;
            Shared::respond_error(
                &mut job.stream,
                ErrorCode::Busy,
                format!(
                    "admission queue is full ({} pending); retry later",
                    shared.config.queue_capacity
                ),
            );
        }
        Err(TrySendError::Disconnected(mut job)) => {
            Shared::respond_error(
                &mut job.stream,
                ErrorCode::Internal,
                "server is shutting down",
            );
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = rx.lock().expect("queue mutex");
            guard.recv()
        };
        let Ok(mut job) = job else { break };
        if let Some(deadline_ms) = job.deadline_ms {
            let waited = job.admitted.elapsed().as_millis() as u64;
            if waited >= deadline_ms {
                shared.stats.lock().expect("stats mutex").deadline_expired += 1;
                Shared::respond_error(
                    &mut job.stream,
                    ErrorCode::DeadlineExceeded,
                    format!("deadline of {deadline_ms} ms expired while queued"),
                );
                continue;
            }
        }
        // Another worker may have computed the same canonical request while
        // this one was queued: serve the stored answer.
        if let Ok(Some(entry)) = shared.store.get(&job.key) {
            shared.stats.lock().expect("stats mutex").store_hits += 1;
            shared.record_telemetry(&job.canonical.gpu.name, store_hit_telemetry(&entry));
            Shared::respond(
                &mut job.stream,
                &OptimizeResponse::Ok(Shared::result_from_entry(&job.key, &entry, true)),
            );
            continue;
        }
        match compute(shared, &job.canonical, &job.key) {
            Ok((report, telemetry)) => {
                let entry = StoreEntry {
                    schema_version: STORE_SCHEMA_VERSION,
                    canonical: job.key.canonical.clone(),
                    arch: job.key.arch.clone(),
                    kernel: job.key.kernel.clone(),
                    seed: job.canonical.seed,
                    report,
                };
                if let Err(err) = shared.store.put(&job.key, entry.clone()) {
                    eprintln!("cuasmrld: failed to persist store entry: {err}");
                }
                shared.stats.lock().expect("stats mutex").computed += 1;
                shared.record_telemetry(&job.canonical.gpu.name, telemetry);
                Shared::respond(
                    &mut job.stream,
                    &OptimizeResponse::Ok(Shared::result_from_entry(&job.key, &entry, false)),
                );
            }
            Err(message) => {
                Shared::respond_error(&mut job.stream, ErrorCode::Internal, message);
            }
        }
    }
}

/// The telemetry record of a store-hit answer: the persisted report's
/// figures with the `from_deploy_cache` marker and no fresh phase timings.
fn store_hit_telemetry(entry: &StoreEntry) -> KernelTelemetry {
    KernelTelemetry {
        kernel: entry.report.kernel.clone(),
        baseline_us: entry.report.baseline_us,
        optimized_us: entry.report.optimized_us,
        speedup: entry.report.speedup,
        verified: entry.report.verified,
        from_deploy_cache: true,
        reward_curve: entry.report.moves.iter().map(|m| m.reward).collect(),
        ..KernelTelemetry::default()
    }
}

/// Runs the search for one canonical request. RL strategies go through a
/// checkpointing [`SearchSession`] keyed by the request (warm restart);
/// everything else runs the one-shot instrumented path. Both paths produce
/// reports bit-identical to a direct [`SuiteOptimizer::optimizer_for`] run.
fn compute(
    shared: &Shared,
    canonical: &CanonicalRequest,
    key: &RequestKey,
) -> Result<(cuasmrl::OptimizationReport, KernelTelemetry), String> {
    let suite = shared
        .config
        .suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer: CuAsmRl = suite.optimizer_for(&canonical.spec);
    let spec: &KernelSpec = &canonical.spec;
    let space = suite.config_space_for(spec);
    if optimizer.rl_config().is_none() {
        let (report, _cubin, telemetry) =
            optimizer.optimize_spec_instrumented(spec, &space, suite.tune_options());
        return Ok((report, telemetry));
    }
    let checkpoint = shared.store.checkpoint_path(key);
    let mut session = match SearchSession::new(
        optimizer.clone(),
        spec,
        &space,
        suite.tune_options(),
        &checkpoint,
    ) {
        Ok(session) => session,
        Err(err) => {
            // A damaged or version-skewed checkpoint must not wedge the
            // request forever: discard it and cold-start once.
            eprintln!(
                "cuasmrld: discarding unusable checkpoint {}: {err}",
                checkpoint.display()
            );
            let _ = std::fs::remove_file(&checkpoint);
            SearchSession::new(optimizer, spec, &space, suite.tune_options(), &checkpoint)
                .map_err(|err| format!("search session failed to start: {err}"))?
        }
    };
    loop {
        let finished = session
            .step(shared.config.checkpoint_updates.max(1))
            .map_err(|err| format!("training checkpoint failed: {err}"))?;
        if finished {
            break;
        }
    }
    let (report, _cubin, telemetry) = session.finish();
    Ok((report, telemetry))
}
