//! `cuasmrld`: optimization-as-a-service for the CuAsmRL reproduction.
//!
//! This crate turns the offline [`cuasmrl::SuiteOptimizer`] workflow into a
//! long-running daemon: clients submit kernel-optimization requests
//! (kernel + architecture + optional shape/seed/deadline) as
//! length-prefixed JSON over a local TCP socket, a bounded worker pool
//! runs the searches, and a persistent, memory-capped [`ScheduleStore`]
//! answers repeat traffic near-free — across process restarts, because the
//! store is disk-backed and in-flight RL training checkpoints through
//! [`cuasmrl::SearchSession`].
//!
//! The crate splits along the service's seams:
//!
//! - [`protocol`] — framing, request/response schemas, canonicalization,
//!   the error taxonomy ([`ErrorCode`]).
//! - [`store`] — the versioned, atomically-written schedule store.
//! - [`server`] — acceptor, admission control, worker pool, preemption,
//!   panic isolation, graceful drain, telemetry.
//! - [`client`] — a minimal blocking client with deterministic retry.
//! - [`load`] — the deterministic load generator (`cuasmrld-bench`).
//! - [`fault`] — deterministic, config-gated fault injection for the chaos
//!   suite.
//!
//! `docs/SERVICE.md` is the service book: wire format, schemas, admission
//! semantics, on-disk layout, warm-restart procedure and the operations
//! runbook.
//!
//! ```no_run
//! use cuasmrld::{Client, OptimizeRequest, OptimizeResponse, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::new("/tmp/cuasmrld-store")).unwrap();
//! let client = Client::new(server.local_addr());
//! let response = client
//!     .request(&OptimizeRequest::table2("softmax", "ampere"))
//!     .unwrap();
//! if let OptimizeResponse::Ok(result) = response {
//!     println!("{}: {:.2}x (from_store: {})", result.kernel, result.report.speedup, result.from_store);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod load;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{Client, RetryPolicy};
pub use fault::{FaultKind, FaultPlan, InjectedFault};
pub use load::{run_load, LoadReport, LoadSpec};
pub use protocol::{
    read_frame, write_frame, CanonicalRequest, ErrorCode, OptimizeRequest, OptimizeResponse,
    OptimizeResult, RequestDefaults, RequestKey, ServiceError, StatusRequest, StatusResult,
    MAX_DEADLINE_MS, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ServiceStats, SERVICE_SUITE_LABEL};
pub use store::{ScheduleStore, StoreEntry, StoreError, StoreStats, STORE_SCHEMA_VERSION};
