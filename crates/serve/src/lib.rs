//! `cuasmrld`: optimization-as-a-service for the CuAsmRL reproduction.
//!
//! This crate turns the offline [`cuasmrl::SuiteOptimizer`] workflow into a
//! long-running daemon: clients submit kernel-optimization requests
//! (kernel + architecture + optional shape/seed/deadline/priority) as
//! length-prefixed JSON over a local TCP socket, a bounded worker pool
//! runs the searches, and a persistent, memory-capped [`ScheduleStore`]
//! answers repeat traffic near-free — across process restarts, because the
//! store is disk-backed and in-flight RL training checkpoints through
//! [`cuasmrl::SearchSession`].
//!
//! Since protocol v2 a connection is persistent and pipelined: a client
//! opens one [`Connection`], submits any number of tagged requests without
//! waiting, and receives each response as it completes — possibly out of
//! order, routed by `request_id`. Admission is a deterministic
//! deadline-aware priority queue ([`AdmissionQueue`], ordered by
//! [`admission_rank`]) instead of FIFO. v1 single-exchange clients keep
//! working unchanged: the server sniffs the first frame's shape and
//! answers bare frames in v1 style.
//!
//! The crate splits along the service's seams:
//!
//! - [`protocol`] — framing, request/response schemas (tagged and bare),
//!   canonicalization, admission ranking, the error taxonomy
//!   ([`ErrorCode`]).
//! - [`queue`] — the bounded, deterministic priority admission queue.
//! - [`store`] — the versioned, checksummed, write-ahead-journaled
//!   schedule store (crash-consistent since durability v2).
//! - [`io`] — the injectable [`StoreIo`] layer with deterministic
//!   [`CrashPoint`] injection for the durability suite.
//! - [`journal`] — the store's checksummed append-only write-ahead
//!   journal.
//! - [`mod@fsck`] — the offline verify/repair walk behind `cuasmrld-fsck`.
//! - [`server`] — acceptor, version sniffing, session demultiplexing,
//!   admission control, worker pool, preemption, panic isolation, graceful
//!   drain, telemetry.
//! - [`client`] — the [`Connection`]/[`ClientBuilder`] pipelined client
//!   API, plus the one-shot [`Client`] facade with deterministic retry.
//! - [`load`] — the deterministic load generator (`cuasmrld-bench`), with
//!   a pipelined mode.
//! - [`fault`] — deterministic, config-gated fault injection for the chaos
//!   suite.
//!
//! `docs/SERVICE.md` is the service book: wire format, schemas, admission
//! semantics, on-disk layout, warm-restart procedure and the operations
//! runbook.
//!
//! ```no_run
//! use cuasmrld::{ClientBuilder, OptimizeRequest, OptimizeResponse, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::new("/tmp/cuasmrld-store")).unwrap();
//! let connection = ClientBuilder::new(server.local_addr()).connect().unwrap();
//! // Pipeline two requests on one connection; each resolves independently.
//! let softmax = connection.submit(&OptimizeRequest::table2("softmax", "ampere")).unwrap();
//! let bmm = connection.submit(&OptimizeRequest::table2("bmm", "ampere")).unwrap();
//! for handle in [bmm, softmax] {
//!     if let OptimizeResponse::Ok(result) = handle.wait().unwrap() {
//!         println!("{}: {:.2}x (from_store: {})", result.kernel, result.report.speedup, result.from_store);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub mod fsck;
pub mod io;
pub mod journal;
pub mod load;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod store;

pub use client::{
    Client, ClientBuilder, Connection, ConnectionFailure, RequestHandle, RetryPolicy,
};
pub use fault::{FaultKind, FaultPlan, InjectedFault};
pub use fsck::{fsck, EntryVerdict, FsckReport, FSCK_SCHEMA_VERSION, QUARANTINE_DIR};
pub use io::{is_simulated_crash, CrashEffect, CrashPoint, CrashPointIo, IoOp, RealIo, StoreIo};
pub use journal::{Journal, JournalOp, JournalReplay, JOURNAL_FILE, JOURNAL_FORMAT_VERSION};
pub use load::{run_load, LoadReport, LoadSpec};
pub use protocol::{
    admission_rank, check_version, poll_frame, read_frame, write_frame, CanonicalRequest,
    ErrorCode, FrameRead, OptimizeRequest, OptimizeResponse, OptimizeResult, RequestBody,
    RequestDefaults, RequestKey, ServiceError, StatusRequest, StatusResult, TaggedRequest,
    TaggedResponse, MAX_DEADLINE_MS, MAX_FRAME_LEN, NO_DEADLINE_RANK_MS, PRIORITY_BIAS_MS,
    PROTOCOL_V1, PROTOCOL_VERSION, UNATTRIBUTED_REQUEST_ID,
};
pub use queue::{AdmissionQueue, PushError};
pub use server::{Server, ServerConfig, ServiceStats, SERVICE_SUITE_LABEL};
pub use store::{
    decode_entry_bytes, ScheduleStore, StoreEntry, StoreError, StoreStats, STORE_SCHEMA_VERSION,
};
