//! The deterministic load generator behind `cuasmrld-bench`.
//!
//! Drives N concurrent synthetic clients through a fixed request schedule:
//! a *cold* round that first exposes every distinct request, then
//! `repeat_rounds` *warm* rounds replaying the identical requests. The
//! schedule is a pure function of the [`LoadSpec`] — no randomness, no
//! clock — so two runs against equal daemon state see identical traffic,
//! and the warm-phase store-hit rate measures the cache economics the
//! service book promises. `Busy` answers are retried with bounded backoff
//! (that is the admission-control contract); every other error counts as a
//! failure.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::client::Client;
use crate::protocol::{ErrorCode, OptimizeRequest, OptimizeResponse};

/// The load shape: which requests, how many clients, how many warm rounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Kernel names cycled through to form the distinct request set.
    pub kernels: Vec<String>,
    /// Architecture every request targets.
    pub arch: String,
    /// Scale divisor for the paper shapes.
    pub scale: usize,
    /// Base seed carried in every request.
    pub seed: u64,
    /// Warm rounds replaying the distinct set after the cold round.
    pub repeat_rounds: usize,
    /// Bounded retries per request on `Busy` before counting a failure.
    pub busy_retries: usize,
}

impl LoadSpec {
    /// A small default burst: every Table-2 kernel, two clients, two warm
    /// rounds.
    #[must_use]
    pub fn smoke(arch: impl Into<String>) -> LoadSpec {
        LoadSpec {
            clients: 2,
            kernels: kernels::KernelKind::all()
                .iter()
                .map(|kind| kind.name().to_string())
                .collect(),
            arch: arch.into(),
            scale: 16,
            seed: 0,
            repeat_rounds: 2,
            busy_retries: 200,
        }
    }

    /// The full deterministic request schedule: one cold round over the
    /// distinct set, then `repeat_rounds` warm rounds of the same set.
    #[must_use]
    pub fn schedule(&self) -> Vec<OptimizeRequest> {
        let distinct: Vec<OptimizeRequest> = self
            .kernels
            .iter()
            .map(|kernel| {
                let mut request = OptimizeRequest::table2(kernel.clone(), self.arch.clone());
                request.scale = Some(self.scale);
                request.seed = Some(self.seed);
                request
            })
            .collect();
        let mut schedule = Vec::new();
        for _ in 0..=self.repeat_rounds {
            schedule.extend(distinct.iter().cloned());
        }
        schedule
    }
}

/// Outcome counters of one load run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests attempted (cold + warm).
    pub sent: usize,
    /// Successful answers.
    pub ok: usize,
    /// Successful answers served from the schedule store.
    pub from_store: usize,
    /// Requests that stayed `Busy` through every retry.
    pub busy_exhausted: usize,
    /// Typed errors other than `Busy`.
    pub errors: usize,
    /// Transport failures.
    pub io_errors: usize,
    /// Warm-phase requests (the repeat rounds).
    pub warm_sent: usize,
    /// Warm-phase answers served from the store.
    pub warm_from_store: usize,
    /// `warm_from_store / warm_sent`, 0 when no warm round ran.
    pub warm_hit_rate: f64,
}

impl LoadReport {
    /// Requests that did not produce a successful answer.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.busy_exhausted + self.errors + self.io_errors
    }
}

/// Runs the load spec against the daemon at `addr` (see the module docs).
/// The cold round runs to completion before the warm rounds start, so the
/// warm-phase hit rate cleanly measures repeat-traffic economics rather
/// than racing first exposure.
#[must_use]
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> LoadReport {
    let client = Client::new(addr);
    let distinct = {
        let mut cold = spec.clone();
        cold.repeat_rounds = 0;
        cold.schedule()
    };
    let mut report = LoadReport::default();
    run_phase(&client, spec, &distinct, &mut report, false);
    let warm: Vec<OptimizeRequest> = (0..spec.repeat_rounds)
        .flat_map(|_| distinct.iter().cloned())
        .collect();
    run_phase(&client, spec, &warm, &mut report, true);
    report.warm_hit_rate = if report.warm_sent == 0 {
        0.0
    } else {
        report.warm_from_store as f64 / report.warm_sent as f64
    };
    report
}

fn run_phase(
    client: &Client,
    spec: &LoadSpec,
    requests: &[OptimizeRequest],
    report: &mut LoadReport,
    warm: bool,
) {
    let next = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let from_store = AtomicUsize::new(0);
    let busy_exhausted = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let io_errors = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..spec.clients.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(request) = requests.get(index) else {
                    return;
                };
                match send_with_retry(client, request, spec.busy_retries) {
                    Outcome::Ok { stored } => {
                        ok.fetch_add(1, Ordering::Relaxed);
                        if stored {
                            from_store.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Outcome::BusyExhausted => {
                        busy_exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    Outcome::Error => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Outcome::Io => {
                        io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    report.sent += requests.len();
    report.ok += ok.into_inner();
    report.busy_exhausted += busy_exhausted.into_inner();
    report.errors += errors.into_inner();
    report.io_errors += io_errors.into_inner();
    let stored = from_store.into_inner();
    report.from_store += stored;
    if warm {
        report.warm_sent += requests.len();
        report.warm_from_store += stored;
    }
}

enum Outcome {
    Ok { stored: bool },
    BusyExhausted,
    Error,
    Io,
}

fn send_with_retry(client: &Client, request: &OptimizeRequest, busy_retries: usize) -> Outcome {
    for attempt in 0..=busy_retries {
        match client.request(request) {
            Ok(OptimizeResponse::Ok(result)) => {
                return Outcome::Ok {
                    stored: result.from_store,
                }
            }
            Ok(OptimizeResponse::Err(error)) if error.code == ErrorCode::Busy => {
                if attempt == busy_retries {
                    return Outcome::BusyExhausted;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(OptimizeResponse::Err(_) | OptimizeResponse::Status(_)) => return Outcome::Error,
            Err(_) => return Outcome::Io,
        }
    }
    Outcome::BusyExhausted
}
