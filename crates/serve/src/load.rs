//! The deterministic load generator behind `cuasmrld-bench`.
//!
//! Drives N concurrent synthetic clients through a fixed request schedule:
//! a *cold* round that first exposes every distinct request, then
//! `repeat_rounds` *warm* rounds replaying the identical requests. The
//! schedule is a pure function of the [`LoadSpec`] — no randomness, no
//! clock — so two runs against equal daemon state see identical traffic,
//! and the warm-phase store-hit rate measures the cache economics the
//! service book promises. `Busy` answers are retried with bounded backoff
//! (that is the admission-control contract); every other error counts as a
//! failure.
//!
//! Two transport modes, same schedule and same accounting:
//!
//! - `pipeline <= 1` (default): the classic v1 shape — one connection per
//!   request, one exchange, close.
//! - `pipeline >= 2`: each client thread opens one persistent v2
//!   [`Connection`] and keeps up to `pipeline` requests in flight on it,
//!   submitting a batch and draining its tagged responses — the mode that
//!   actually exercises multiplexing, out-of-order completion and the
//!   per-connection demux path.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::client::{Client, Connection, RequestHandle};
use crate::protocol::{ErrorCode, OptimizeRequest, OptimizeResponse};

/// The load shape: which requests, how many clients, how many warm rounds,
/// how deep each client pipelines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Concurrent client threads.
    pub clients: usize,
    /// Kernel names cycled through to form the distinct request set.
    pub kernels: Vec<String>,
    /// Architecture every request targets.
    pub arch: String,
    /// Scale divisor for the paper shapes.
    pub scale: usize,
    /// Base seed carried in every request.
    pub seed: u64,
    /// Warm rounds replaying the distinct set after the cold round.
    pub repeat_rounds: usize,
    /// Bounded retries per request on `Busy` before counting a failure.
    pub busy_retries: usize,
    /// In-flight requests per client thread. `0`/`1` is the classic
    /// one-connection-per-request mode; `N >= 2` keeps one persistent v2
    /// session per client with up to `N` pipelined requests on it. Added
    /// in v2 (additive, `#[serde(default)]`).
    #[serde(default)]
    pub pipeline: usize,
}

impl LoadSpec {
    /// A small default burst: every Table-2 kernel, two clients, two warm
    /// rounds, no pipelining.
    #[must_use]
    pub fn smoke(arch: impl Into<String>) -> LoadSpec {
        LoadSpec {
            clients: 2,
            kernels: kernels::KernelKind::all()
                .iter()
                .map(|kind| kind.name().to_string())
                .collect(),
            arch: arch.into(),
            scale: 16,
            seed: 0,
            repeat_rounds: 2,
            busy_retries: 200,
            pipeline: 0,
        }
    }

    /// The full deterministic request schedule: one cold round over the
    /// distinct set, then `repeat_rounds` warm rounds of the same set.
    #[must_use]
    pub fn schedule(&self) -> Vec<OptimizeRequest> {
        let distinct: Vec<OptimizeRequest> = self
            .kernels
            .iter()
            .map(|kernel| {
                let mut request = OptimizeRequest::table2(kernel.clone(), self.arch.clone());
                request.scale = Some(self.scale);
                request.seed = Some(self.seed);
                request
            })
            .collect();
        let mut schedule = Vec::new();
        for _ in 0..=self.repeat_rounds {
            schedule.extend(distinct.iter().cloned());
        }
        schedule
    }
}

/// Outcome counters of one load run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests attempted (cold + warm).
    pub sent: usize,
    /// Successful answers.
    pub ok: usize,
    /// Successful answers served from the schedule store.
    pub from_store: usize,
    /// Requests that stayed `Busy` through every retry.
    pub busy_exhausted: usize,
    /// Typed errors other than `Busy`.
    pub errors: usize,
    /// Transport failures.
    pub io_errors: usize,
    /// Warm-phase requests (the repeat rounds).
    pub warm_sent: usize,
    /// Warm-phase answers served from the store.
    pub warm_from_store: usize,
    /// `warm_from_store / warm_sent`, 0 when no warm round ran.
    pub warm_hit_rate: f64,
    /// The pipeline depth the run used (echo of the spec; 0/1 = one-shot
    /// mode). Added in v2 (additive, `#[serde(default)]`).
    #[serde(default)]
    pub pipeline: usize,
    /// The daemon's cumulative content-checksum failure counters probed at
    /// the end of the run: [`crate::ServiceStats::checksum_failures`]
    /// (serving-path heals) plus [`crate::StoreStats::checksum_failures`]
    /// (open-scan and lookup detections — a serving-path heal appears in
    /// both, so treat this as a detector, not an exact census). Nonzero
    /// during a fault-free burst means silent data corruption —
    /// `cuasmrld-bench --verify-store` fails on it. Added in durability v2
    /// (additive, `#[serde(default)]`).
    #[serde(default)]
    pub checksum_failures: u64,
    /// The daemon's cumulative journal-replay count
    /// ([`crate::StoreStats::journal_replayed`]) probed at the end of the
    /// run: entry writes a previous crash lost and the write-ahead journal
    /// restored at open. Expected after a kill burst, alarming during a
    /// clean one. Added in durability v2 (additive, `#[serde(default)]`).
    #[serde(default)]
    pub journal_replays: u64,
}

impl LoadReport {
    /// Requests that did not produce a successful answer.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.busy_exhausted + self.errors + self.io_errors
    }
}

/// Runs the load spec against the daemon at `addr` (see the module docs).
/// The cold round runs to completion before the warm rounds start, so the
/// warm-phase hit rate cleanly measures repeat-traffic economics rather
/// than racing first exposure.
#[must_use]
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> LoadReport {
    let client = Client::new(addr);
    let distinct = {
        let mut cold = spec.clone();
        cold.repeat_rounds = 0;
        cold.schedule()
    };
    let mut report = LoadReport {
        pipeline: spec.pipeline,
        ..LoadReport::default()
    };
    run_phase(&client, spec, &distinct, &mut report, false);
    let warm: Vec<OptimizeRequest> = (0..spec.repeat_rounds)
        .flat_map(|_| distinct.iter().cloned())
        .collect();
    run_phase(&client, spec, &warm, &mut report, true);
    report.warm_hit_rate = if report.warm_sent == 0 {
        0.0
    } else {
        report.warm_from_store as f64 / report.warm_sent as f64
    };
    // Best-effort end-of-run durability probe: cumulative daemon counters,
    // so a clean burst can assert they are zero. A failed probe leaves
    // them zero rather than failing a run that otherwise succeeded.
    if let Ok(status) = client.status() {
        report.checksum_failures = status.stats.checksum_failures + status.store.checksum_failures;
        report.journal_replays = status.store.journal_replayed;
    }
    report
}

/// The per-phase counters every client thread tallies into.
#[derive(Default)]
struct PhaseCounters {
    ok: AtomicUsize,
    from_store: AtomicUsize,
    busy_exhausted: AtomicUsize,
    errors: AtomicUsize,
    io_errors: AtomicUsize,
}

impl PhaseCounters {
    fn tally(&self, outcome: &Outcome) {
        match outcome {
            Outcome::Ok { stored } => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                if *stored {
                    self.from_store.fetch_add(1, Ordering::Relaxed);
                }
            }
            Outcome::BusyExhausted => {
                self.busy_exhausted.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Error => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Io => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn run_phase(
    client: &Client,
    spec: &LoadSpec,
    requests: &[OptimizeRequest],
    report: &mut LoadReport,
    warm: bool,
) {
    let next = AtomicUsize::new(0);
    let counters = PhaseCounters::default();
    std::thread::scope(|scope| {
        for _ in 0..spec.clients.max(1) {
            if spec.pipeline >= 2 {
                scope.spawn(|| pipelined_client(client, spec, requests, &next, &counters));
            } else {
                scope.spawn(|| oneshot_client(client, spec, requests, &next, &counters));
            }
        }
    });
    report.sent += requests.len();
    report.ok += counters.ok.into_inner();
    report.busy_exhausted += counters.busy_exhausted.into_inner();
    report.errors += counters.errors.into_inner();
    report.io_errors += counters.io_errors.into_inner();
    let stored = counters.from_store.into_inner();
    report.from_store += stored;
    if warm {
        report.warm_sent += requests.len();
        report.warm_from_store += stored;
    }
}

/// The classic v1 shape: claim one index at a time, one connection per
/// exchange.
fn oneshot_client(
    client: &Client,
    spec: &LoadSpec,
    requests: &[OptimizeRequest],
    next: &AtomicUsize,
    counters: &PhaseCounters,
) {
    loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        let Some(request) = requests.get(index) else {
            return;
        };
        counters.tally(&send_with_retry(client, request, spec.busy_retries));
    }
}

/// The v2 shape: one persistent session per thread, up to `pipeline`
/// requests in flight at once — submit the whole batch, then drain its
/// handles (each resolving whenever the server answers it).
fn pipelined_client(
    client: &Client,
    spec: &LoadSpec,
    requests: &[OptimizeRequest],
    next: &AtomicUsize,
    counters: &PhaseCounters,
) {
    let connection = match client.builder().connect() {
        Ok(connection) => connection,
        Err(_) => {
            // Claim and fail this thread's share so the totals still
            // account for every scheduled request.
            while requests.get(next.fetch_add(1, Ordering::Relaxed)).is_some() {
                counters.tally(&Outcome::Io);
            }
            return;
        }
    };
    loop {
        let mut batch: Vec<&OptimizeRequest> = Vec::with_capacity(spec.pipeline);
        while batch.len() < spec.pipeline {
            let index = next.fetch_add(1, Ordering::Relaxed);
            match requests.get(index) {
                Some(request) => batch.push(request),
                None => break,
            }
        }
        if batch.is_empty() {
            return;
        }
        let handles: Vec<io::Result<RequestHandle>> = batch
            .iter()
            .map(|request| connection.submit(request))
            .collect();
        for (request, handle) in batch.iter().zip(handles) {
            counters.tally(&wait_with_retry(
                &connection,
                request,
                handle,
                spec.busy_retries,
            ));
        }
    }
}

enum Outcome {
    Ok { stored: bool },
    BusyExhausted,
    Error,
    Io,
}

fn classify(response: OptimizeResponse) -> Result<Outcome, ()> {
    match response {
        OptimizeResponse::Ok(result) => Ok(Outcome::Ok {
            stored: result.from_store,
        }),
        // `Busy` is the retryable answer — admission control's contract.
        OptimizeResponse::Err(error) if error.code == ErrorCode::Busy => Err(()),
        OptimizeResponse::Err(_) | OptimizeResponse::Status(_) => Ok(Outcome::Error),
    }
}

fn send_with_retry(client: &Client, request: &OptimizeRequest, busy_retries: usize) -> Outcome {
    for attempt in 0..=busy_retries {
        match client.request(request) {
            Ok(response) => match classify(response) {
                Ok(outcome) => return outcome,
                Err(()) => {
                    if attempt == busy_retries {
                        return Outcome::BusyExhausted;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            },
            Err(_) => return Outcome::Io,
        }
    }
    Outcome::BusyExhausted
}

/// The pipelined counterpart of [`send_with_retry`]: wait on the submitted
/// handle, resubmitting on the same session after a `Busy` answer.
fn wait_with_retry(
    connection: &Connection,
    request: &OptimizeRequest,
    first: io::Result<RequestHandle>,
    busy_retries: usize,
) -> Outcome {
    let mut handle = first;
    for attempt in 0..=busy_retries {
        let response = match handle {
            Ok(waiting) => match waiting.wait() {
                Ok(response) => response,
                Err(_) => return Outcome::Io,
            },
            Err(_) => return Outcome::Io,
        };
        match classify(response) {
            Ok(outcome) => return outcome,
            Err(()) => {
                if attempt == busy_retries {
                    return Outcome::BusyExhausted;
                }
                std::thread::sleep(Duration::from_millis(20));
                handle = connection.submit(request);
            }
        }
    }
    Outcome::BusyExhausted
}
