//! Figure 6: overall kernel throughput of CuAsmRL vs Triton vs the
//! PyTorch / reference-library / Cutlass baselines, normalized to Triton = 1.

use bench::{harness_config, harness_measure, optimize_kernel, DEFAULT_SCALE};
use gpusim::GpuConfig;
use kernels::{
    baseline_runtime_us, generate, BaselineSystem, KernelKind, KernelSpec, ScheduleStyle,
};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    let gpu = GpuConfig::a100();
    let opts = harness_measure();
    println!("Figure 6 — normalized kernel throughput (Triton = 1.00), scale=1/{scale}");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "kernel", "Torch", "Triton", "CuAsmRL", "Ref", "Cutlass"
    );
    let mut geo = 1.0f64;
    let mut n = 0u32;
    for kind in KernelKind::all() {
        let spec = KernelSpec::scaled(kind, scale);
        let config = harness_config(kind);
        let triton = generate(&spec, &config, ScheduleStyle::Baseline);
        let triton_us =
            gpusim::measure(&gpu, &triton.program, &triton.launch, &opts).mean_us;
        let report = optimize_kernel(kind, scale, 48);
        assert!(report.verified, "{kind:?} failed probabilistic verification");
        let cuasmrl_us = triton_us * report.optimized_us / report.baseline_us;
        let torch = baseline_runtime_us(&gpu, &spec, &config, BaselineSystem::Torch, &opts);
        let reference =
            baseline_runtime_us(&gpu, &spec, &config, BaselineSystem::Reference, &opts);
        let cutlass = baseline_runtime_us(&gpu, &spec, &config, BaselineSystem::Cutlass, &opts);
        let norm = |us: Option<f64>| us.map_or("-".to_string(), |u| format!("{:.2}", triton_us / u));
        println!(
            "{:<16} {:>8} {:>8.2} {:>8.2} {:>8} {:>9}",
            kind.name(),
            norm(torch),
            1.0,
            triton_us / cuasmrl_us,
            norm(reference),
            norm(cutlass),
        );
        geo *= triton_us / cuasmrl_us;
        n += 1;
    }
    println!(
        "geometric-mean CuAsmRL speedup over Triton: {:.3}x (paper: 1.09x)",
        geo.powf(1.0 / f64::from(n))
    );
}
