//! Figure 6: overall kernel throughput of CuAsmRL vs Triton vs the
//! PyTorch / reference-library / Cutlass baselines, normalized to Triton = 1.
//!
//! The CuAsmRL column is produced by the parallel [`cuasmrl::SuiteOptimizer`]
//! driver: one hierarchical search per kernel, sharded across `--jobs`
//! worker threads. `--smoke` switches to the CI configuration (smallest
//! shapes and budgets, small autotuning space) which exercises the whole
//! parallel pipeline end to end in seconds. `--arch` selects the GPU
//! architecture backend (`ampere` default, `turing`, `hopper`) and
//! `--suite` the workload-registry suite (`table2` default, `attention`,
//! `reduction`); the default selection reproduces the paper's
//! single-architecture figure byte for byte.
//!
//! ```text
//! cargo run --release --bin fig6_throughput -- \
//!     [--scale N] [--jobs N] [--smoke] [--arch NAME] [--suite NAME]
//! ```

use bench::{harness_config, harness_measure, suite_driver, HarnessArgs, DEFAULT_SCALE};
use kernels::{baseline_runtime_us, generate, BaselineSystem, ScheduleStyle};

fn main() {
    let args = HarnessArgs::parse(DEFAULT_SCALE);
    let gpu = args.gpu();
    let workload = args.workload();
    let opts = harness_measure();
    println!(
        "Figure 6 — normalized kernel throughput (Triton = 1.00), scale=1/{}, jobs={}{}{}",
        args.scale,
        args.jobs,
        if args.smoke { ", smoke" } else { "" },
        args.selection_suffix(),
    );

    // Optimize the whole suite through the parallel driver first; the table
    // below is then pure measurement and formatting.
    let driver = suite_driver(&args, args.budget_moves(48));
    let suite = driver.optimize_workload(&workload, args.scale);
    assert_eq!(suite.reports.len(), workload.entries.len());

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "kernel", "Torch", "Triton", "CuAsmRL", "Ref", "Cutlass"
    );
    for (entry, report) in workload.entries.iter().zip(&suite.reports) {
        assert!(
            report.verified,
            "{} failed probabilistic verification",
            entry.label
        );
        let spec = entry.spec(args.scale);
        let config = harness_config(entry.kind);
        let triton = generate(&spec, &config, ScheduleStyle::Baseline);
        let triton_us = gpusim::measure(&gpu, &triton.program, &triton.launch, &opts).mean_us;
        let cuasmrl_us = triton_us * report.optimized_us / report.baseline_us;
        let torch = baseline_runtime_us(&gpu, &spec, &config, BaselineSystem::Torch, &opts);
        let reference = baseline_runtime_us(&gpu, &spec, &config, BaselineSystem::Reference, &opts);
        let cutlass = baseline_runtime_us(&gpu, &spec, &config, BaselineSystem::Cutlass, &opts);
        let norm =
            |us: Option<f64>| us.map_or("-".to_string(), |u| format!("{:.2}", triton_us / u));
        println!(
            "{:<16} {:>8} {:>8.2} {:>8.2} {:>8} {:>9}",
            entry.label,
            norm(torch),
            1.0,
            triton_us / cuasmrl_us,
            norm(reference),
            norm(cutlass),
        );
    }
    println!(
        "geometric-mean CuAsmRL speedup over Triton: {:.3}x (paper: 1.09x)",
        suite.geomean_speedup
    );
    if let Some(dir) = &args.report_dir {
        println!(
            "artifacts: suite report and telemetry manifest written under {}",
            dir.display()
        );
    }
    if args.smoke {
        assert_eq!(
            suite.verified,
            suite.reports.len(),
            "smoke run must verify every kernel"
        );
        assert!(
            suite.geomean_speedup >= 1.0,
            "smoke run must never regress the suite"
        );
        println!("smoke check passed: parallel driver verified the full suite");
    }
}
