//! Table 3 and Figures 10/11: Nsight-style compute/memory workload analysis
//! and memory chart of the fused GEMM + LeakyReLU kernel, for the CuAsmRL
//! and Triton schedules.

use bench::{harness_config, DEFAULT_SCALE};
use cuasmrl::{CuAsmRl, Strategy};
use gpusim::{simulate_launch, GpuConfig, MemoryChart, WorkloadAnalysis};
use kernels::{generate, KernelKind, KernelSpec, ScheduleStyle};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    let gpu = GpuConfig::a100();
    let kind = KernelKind::MatmulLeakyRelu;
    let spec = KernelSpec::scaled(kind, scale);
    let kernel = generate(&spec, &harness_config(kind), ScheduleStyle::Baseline);

    let optimizer = CuAsmRl::new(gpu.clone(), Strategy::Greedy { max_moves: 16 });
    let report =
        optimizer.optimize_program(&kernel.name, kernel.program.clone(), kernel.launch.clone());
    let optimized: sass::Program = report.optimized_listing.parse().unwrap();

    let triton_run = simulate_launch(&gpu, &kernel.program, &kernel.launch);
    let cuasmrl_run = simulate_launch(&gpu, &optimized, &kernel.launch);
    let triton = WorkloadAnalysis::from_run(&gpu, &triton_run);
    let cuasmrl = WorkloadAnalysis::from_run(&gpu, &cuasmrl_run);

    println!("Table 3 — compute and memory workload analysis (fused GEMM + LeakyReLU)");
    println!("{:<36} {:>10} {:>10}", "metric", "CuAsmRL", "Triton");
    let row = |name: &str, a: f64, b: f64| println!("{name:<36} {a:>10.2} {b:>10.2}");
    row(
        "Executed Ipc Active (inst/cycle)",
        cuasmrl.ipc_active,
        triton.ipc_active,
    );
    row(
        "Executed Ipc Elapsed (inst/cycle)",
        cuasmrl.ipc_elapsed,
        triton.ipc_elapsed,
    );
    row("SM Busy (%)", cuasmrl.sm_busy_pct, triton.sm_busy_pct);
    row(
        "Memory Throughput (GB/s)",
        cuasmrl.memory_throughput_gbs,
        triton.memory_throughput_gbs,
    );
    row("Mem Busy (%)", cuasmrl.mem_busy_pct, triton.mem_busy_pct);
    row(
        "Max Bandwidth (%)",
        cuasmrl.max_bandwidth_pct,
        triton.max_bandwidth_pct,
    );

    println!("\nFigures 10/11 — memory chart (global -> shared asynchronous copy path)");
    let chart_c = MemoryChart::from_run(&cuasmrl_run);
    let chart_t = MemoryChart::from_run(&triton_run);
    println!("{:<36} {:>10} {:>10}", "metric", "CuAsmRL", "Triton");
    row(
        "global->shared throughput (GB/s)",
        chart_c.global_to_shared_gbs,
        chart_t.global_to_shared_gbs,
    );
    row(
        "L1 hit rate (%)",
        chart_c.l1_hit_rate_pct,
        chart_t.l1_hit_rate_pct,
    );
    row(
        "L2 hit rate (%)",
        chart_c.l2_hit_rate_pct,
        chart_t.l2_hit_rate_pct,
    );
    println!(
        "\nruntime: Triton {:.2} us, CuAsmRL {:.2} us ({:.2}x)",
        report.baseline_us, report.optimized_us, report.speedup
    );
}
