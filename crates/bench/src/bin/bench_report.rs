//! Canonical benchmark reports and the perf-regression gate.
//!
//! Two modes:
//!
//! ```text
//! # Run the fig6 suite harness over an arch x suite matrix plus the Table-1
//! # stall micro-benchmarks, and emit the canonical BENCH_*.json artifact:
//! bench_report run [--out PATH] [--runs N] [--scale N] [--jobs N] [--smoke]
//!                  [--arch NAME[,NAME...]] [--suite NAME[,NAME...]]
//!
//! # Diff a candidate report against a baseline; exit 1 on regression:
//! bench_report compare BASELINE CANDIDATE [--tolerance F] [--quality-tolerance F]
//! ```
//!
//! Wall clock is machine-dependent, so `compare` gates it with the relative
//! `--tolerance` (default 0.1 — right for same-machine A/B; CI compares a
//! fresh runner against the committed baseline with a looser value). The
//! geometric-mean speedup, verified-kernel counts and stall tables are
//! deterministic simulator outputs and are gated strictly.

use std::process::ExitCode;
use std::time::Instant;

use bench::{
    compare_reports, delta_sweep, edit_sweep, iqr_ms, median_ms, suite_driver, ArchStalls,
    BenchCell, BenchReport, BenchRunConfig, CompareTolerance, HarnessArgs, OpStall,
    BENCH_REPORT_SCHEMA_VERSION, SMOKE_SCALE, STALL_TABLE_OPS,
};
use cuasmrl::dependency_based_stall;

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!("usage: bench_report run [--out PATH] [--runs N] [--scale N] [--jobs N] [--smoke]");
    eprintln!("                        [--arch NAME[,NAME...]] [--suite NAME[,NAME...]]");
    eprintln!("       bench_report compare BASELINE CANDIDATE [--tolerance F]");
    eprintln!("                        [--quality-tolerance F]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_mode(&args[1..]),
        Some("compare") => compare_mode(&args[1..]),
        Some(other) => usage(&format!("unknown mode `{other}`")),
        None => usage("missing mode"),
    }
}

fn parse_names(value: &str, valid: &[String], what: &str) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for raw in value.split(',') {
        let canonical = match what {
            "architecture" => gpusim::ArchSpec::by_name(raw).map(|a| a.name),
            _ => kernels::find_suite(raw).map(|s| s.name.to_string()),
        };
        match canonical {
            Some(name) => {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
            None => {
                return Err(format!(
                    "unknown {what} `{raw}` (expected one of: {})",
                    valid.join(", ")
                ))
            }
        }
    }
    Ok(names)
}

#[allow(clippy::too_many_lines)] // linear CLI plumbing
fn run_mode(args: &[String]) -> ExitCode {
    let mut out = std::path::PathBuf::from("bench_report.json");
    let mut runs = 3usize;
    let mut scale: Option<usize> = None;
    let mut jobs = 4usize;
    let mut smoke = false;
    let arch_names: Vec<String> = gpusim::ArchSpec::builtin_names()
        .iter()
        .map(ToString::to_string)
        .collect();
    let suite_names: Vec<String> = kernels::suite_names()
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut arches = arch_names.clone();
    let mut suites = suite_names.clone();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = std::path::PathBuf::from(path),
                None => return usage("--out requires a path"),
            },
            "--runs" => match iter.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => runs = n,
                _ => return usage("--runs requires a positive integer"),
            },
            "--scale" => match iter.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => scale = Some(n),
                _ => return usage("--scale requires a positive integer"),
            },
            "--jobs" => match iter.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => jobs = n,
                _ => return usage("--jobs requires a positive integer"),
            },
            "--smoke" => smoke = true,
            "--arch" => match iter.next() {
                Some(v) => match parse_names(v, &arch_names, "architecture") {
                    Ok(names) => arches = names,
                    Err(problem) => return usage(&problem),
                },
                None => return usage("--arch requires a name list"),
            },
            "--suite" => match iter.next() {
                Some(v) => match parse_names(v, &suite_names, "suite") {
                    Ok(names) => suites = names,
                    Err(problem) => return usage(&problem),
                },
                None => return usage("--suite requires a name list"),
            },
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }
    let scale = scale.unwrap_or(if smoke { SMOKE_SCALE } else { 8 });

    let mut cells = Vec::new();
    for arch in &arches {
        for suite in &suites {
            let harness = HarnessArgs {
                scale,
                jobs,
                smoke,
                arch: arch.clone(),
                suite: suite.clone(),
                report_dir: None,
            };
            let workload = harness.workload();
            let driver = suite_driver(&harness, harness.budget_moves(48));
            let mut runs_ms = Vec::with_capacity(runs);
            let mut last = None;
            for run in 0..runs {
                let start = Instant::now();
                let report = driver.optimize_workload(&workload, harness.scale);
                runs_ms.push(start.elapsed().as_secs_f64() * 1e3);
                eprintln!(
                    "{arch}/{suite} run {}/{runs}: {:.1} ms (geomean {:.3}x, {}/{} verified)",
                    run + 1,
                    runs_ms[run],
                    report.geomean_speedup,
                    report.verified,
                    report.reports.len()
                );
                last = Some(report);
            }
            let report = last.expect("runs >= 1");
            // Deterministic delta-engine health sweep for this cell: every
            // legal single swap of the suite's kernels evaluated once
            // through the incremental engine (gated by `compare`).
            let sweep = delta_sweep(&harness.gpu(), &workload, harness.scale);
            cells.push(BenchCell {
                arch: arch.clone(),
                suite: suite.clone(),
                median_ms: median_ms(&runs_ms),
                iqr_ms: iqr_ms(&runs_ms),
                runs_ms,
                geomean_speedup: report.geomean_speedup,
                verified: report.verified,
                kernels: report.reports.len(),
                delta_spliced: sweep.spliced,
                delta_resumed: sweep.resumed,
                delta_fallbacks: sweep.fallbacks,
            });
            // Companion cell: the same suite swept through the *rich* edit
            // set (block moves, reuse toggles, stall retunes, barrier
            // edits). The wall-clock samples time the sweep itself — the
            // multi-edit delta splice rate — and the tallies are gated by
            // the same fallback ceiling as the swap sweep. The quality
            // fields are fixed (nothing is optimized here), so old
            // baselines without this cell still compare clean.
            let mut edit_runs_ms = Vec::with_capacity(runs);
            let mut edit_tallies = None;
            for _ in 0..runs {
                let start = Instant::now();
                edit_tallies = Some(edit_sweep(&harness.gpu(), &workload, harness.scale));
                edit_runs_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
            let edit_tallies = edit_tallies.expect("runs >= 1");
            eprintln!(
                "{arch}/{suite}-edits sweep: {} spliced, {} resumed, {} fallbacks",
                edit_tallies.spliced, edit_tallies.resumed, edit_tallies.fallbacks
            );
            cells.push(BenchCell {
                arch: arch.clone(),
                suite: format!("{suite}-edits"),
                median_ms: median_ms(&edit_runs_ms),
                iqr_ms: iqr_ms(&edit_runs_ms),
                runs_ms: edit_runs_ms,
                geomean_speedup: 1.0,
                verified: workload.entries.len(),
                kernels: workload.entries.len(),
                delta_spliced: edit_tallies.spliced,
                delta_resumed: edit_tallies.resumed,
                delta_fallbacks: edit_tallies.fallbacks,
            });
        }
    }

    let mut stall_counts = Vec::new();
    for arch in &arches {
        let harness = HarnessArgs {
            scale,
            jobs,
            smoke,
            arch: arch.clone(),
            suite: suites[0].clone(),
            report_dir: None,
        };
        let gpu = harness.gpu();
        stall_counts.push(ArchStalls {
            arch: arch.clone(),
            stalls: STALL_TABLE_OPS
                .iter()
                .map(|&op| OpStall {
                    op: op.to_string(),
                    stall: dependency_based_stall(&gpu, op).map(u32::from),
                })
                .collect(),
        });
    }

    let report = BenchReport {
        schema_version: BENCH_REPORT_SCHEMA_VERSION,
        tool: "bench_report".to_string(),
        config: BenchRunConfig {
            scale,
            jobs,
            smoke,
            runs,
        },
        cells,
        stall_counts,
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: could not serialize the report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "{:<24} {:>11} {:>9} {:>9} {:>10} {:>14}",
        "cell", "median_ms", "iqr_ms", "geomean", "verified", "delta_fallback"
    );
    for cell in &report.cells {
        println!(
            "{:<24} {:>11.1} {:>9.1} {:>8.3}x {:>7}/{} {:>13.1}%",
            cell.key(),
            cell.median_ms,
            cell.iqr_ms,
            cell.geomean_speedup,
            cell.verified,
            cell.kernels,
            cell.delta_fallback_rate() * 100.0
        );
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

fn compare_mode(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance = CompareTolerance::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerance" => match iter.next().map(|v| v.parse()) {
                Some(Ok(t)) if t >= 0.0 => tolerance.time = t,
                _ => return usage("--tolerance requires a non-negative number"),
            },
            "--quality-tolerance" => match iter.next().map(|v| v.parse()) {
                Some(Ok(t)) if t >= 0.0 => tolerance.quality = t,
                _ => return usage("--quality-tolerance requires a non-negative number"),
            },
            other if !other.starts_with('-') => paths.push(std::path::PathBuf::from(other)),
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return usage("compare requires exactly BASELINE and CANDIDATE paths");
    };
    let load = |path: &std::path::Path| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("could not read {}: {e}", path.display()))?;
        let report: BenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not a bench report: {e}", path.display()))?;
        if report.schema_version != BENCH_REPORT_SCHEMA_VERSION {
            return Err(format!(
                "{} has schema version {} (this build reads {BENCH_REPORT_SCHEMA_VERSION})",
                path.display(),
                report.schema_version
            ));
        }
        Ok(report)
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "comparing {} (candidate) against {} (baseline): \
         time tolerance {:.0}%, quality tolerance {:.0}%",
        candidate_path.display(),
        baseline_path.display(),
        tolerance.time * 100.0,
        tolerance.quality * 100.0
    );
    for base in &baseline.cells {
        if let Some(cand) = candidate.cell(&base.arch, &base.suite) {
            println!(
                "{:<24} median {:>8.1} -> {:>8.1} ms ({:+.1}%)  geomean {:.3}x -> {:.3}x  \
                 verified {}/{} -> {}/{}  delta fallback {:.1}% -> {:.1}%",
                base.key(),
                base.median_ms,
                cand.median_ms,
                (cand.median_ms / base.median_ms.max(1e-9) - 1.0) * 100.0,
                base.geomean_speedup,
                cand.geomean_speedup,
                base.verified,
                base.kernels,
                cand.verified,
                cand.kernels,
                base.delta_fallback_rate() * 100.0,
                cand.delta_fallback_rate() * 100.0
            );
        }
    }
    let regressions = compare_reports(&baseline, &candidate, &tolerance);
    if regressions.is_empty() {
        println!("PASS: no regression against the baseline");
        ExitCode::SUCCESS
    } else {
        for regression in &regressions {
            eprintln!("REGRESSION: {regression}");
        }
        eprintln!("FAIL: {} regression(s)", regressions.len());
        ExitCode::FAILURE
    }
}
