//! Figure 7: percentages of stall-count dependencies resolved by the
//! built-in table (db), inferred by the analysis pass, or denylisted, over
//! the evaluated kernel suite.

use bench::{harness_config, DEFAULT_SCALE};
use cuasmrl::{analyze, StallTable};
use kernels::{generate, KernelKind, KernelSpec, ScheduleStyle};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    let table = StallTable::builtin_a100();
    println!("Figure 7 — stall-count dependency resolution (percent of memory instructions)");
    println!(
        "{:<16} {:>8} {:>12} {:>10}",
        "kernel", "db", "infer-only", "denylist"
    );
    let mut totals = (0.0, 0.0, 0.0);
    for kind in KernelKind::all() {
        let spec = KernelSpec::scaled(kind, scale);
        let kernel = generate(&spec, &harness_config(kind), ScheduleStyle::Baseline);
        let analysis = analyze(&kernel.program, &table);
        let (db, infer, deny) = analysis.breakdown.percentages();
        println!("{:<16} {db:>7.1}% {infer:>11.1}% {deny:>9.1}%", kind.name());
        totals.0 += db;
        totals.1 += infer;
        totals.2 += deny;
    }
    let n = KernelKind::all().len() as f64;
    println!(
        "{:<16} {:>7.1}% {:>11.1}% {:>9.1}%   (paper averages: 41.7% / 29.2% / rest)",
        "average",
        totals.0 / n,
        totals.1 / n,
        totals.2 / n
    );
}
