//! Figure 8 (hyperparameter sensitivity) and Figure 12 (training statistics
//! time series): train the PPO agent on the fused GEMM + LeakyReLU assembly
//! game under several learning rates and batch sizes and report episodic
//! returns, approximate KL divergence and policy entropy.

use bench::{harness_config, harness_measure};
use cuasmrl::{AssemblyGame, GameConfig, StallTable};
use gpusim::GpuConfig;
use kernels::{generate, KernelKind, KernelSpec, ScheduleStyle};
use rl::{Env, PpoConfig, PpoTrainer};

fn train_once(lr: f32, batch: usize, total_steps: usize) -> rl::TrainingStats {
    let kind = KernelKind::MatmulLeakyRelu;
    let spec = KernelSpec::scaled(kind, 16);
    let kernel = generate(&spec, &harness_config(kind), ScheduleStyle::Baseline);
    let mut game = AssemblyGame::new(
        GpuConfig::a100(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        GameConfig {
            episode_length: 32,
            measure: harness_measure(),
            ..GameConfig::default()
        },
    );
    let config = PpoConfig {
        learning_rate: lr,
        rollout_steps: batch,
        total_steps,
        channels: 16,
        kernel: 5,
        anneal_lr: true,
        ..PpoConfig::default()
    };
    let mut trainer = PpoTrainer::new(config, game.observation_features(), game.action_count());
    trainer.train(&mut game)
}

fn main() {
    let total_steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    println!(
        "Figure 8 — episodic returns under different hyperparameters ({total_steps} steps each)"
    );
    println!(
        "{:<24} {:>16} {:>14}",
        "setting", "final return", "best episode"
    );
    for (label, lr, batch) in [
        ("default (2.5e-4, 64)", 2.5e-4f32, 64usize),
        ("lr=1e-3", 1e-3, 64),
        ("lr=1e-4", 1e-4, 64),
        ("batch=32", 2.5e-4, 32),
        ("batch=128", 2.5e-4, 128),
    ] {
        let stats = train_once(lr, batch, total_steps);
        let best = stats
            .episodic_returns
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        println!(
            "{label:<24} {:>16.3} {:>14.3}",
            stats.final_return(10),
            if best.is_finite() { best } else { 0.0 }
        );
    }

    println!("\nFigure 12 — training statistics time series (default setting)");
    let stats = train_once(2.5e-4, 64, total_steps);
    println!("{:>6} {:>12} {:>10}", "update", "approx KL", "entropy");
    for (i, (kl, h)) in stats.approx_kl.iter().zip(&stats.entropy).enumerate() {
        println!("{i:>6} {kl:>12.6} {h:>10.4}");
    }
}
