//! Figures 9 and 13: the optimization moves discovered automatically on the
//! fused GEMM + LeakyReLU and batch-matmul kernels — hoisting asynchronous
//! copies so that tensor-core instructions (with `.reuse` operands) stay
//! adjacent, and scheduling `LDGSTS` ahead of predicated-off `@!PT LDS`
//! instructions.

use bench::{optimize_kernel, DEFAULT_SCALE};
use kernels::KernelKind;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE);
    for (figure, kind) in [
        ("Figure 9", KernelKind::MatmulLeakyRelu),
        ("Figure 13", KernelKind::BatchMatmul),
    ] {
        let report = optimize_kernel(kind, scale, 20);
        println!(
            "{figure} — {}: {:.2} us -> {:.2} us ({:.2}x, verified={})",
            kind.name(),
            report.baseline_us,
            report.optimized_us,
            report.speedup,
            report.verified
        );
        let mut ldgsts_moves = 0usize;
        for m in &report.moves {
            if m.text.contains("LDGSTS") {
                ldgsts_moves += 1;
            }
            println!(
                "    reward {:+.3}  {:?}  {}",
                m.reward,
                m.direction,
                m.text.trim()
            );
        }
        println!(
            "    {} of {} moves reposition an LDGSTS asynchronous copy\n",
            ldgsts_moves,
            report.moves.len()
        );
    }
}
