//! Table 1: fixed-latency instructions and their stall counts, recovered by
//! dependency-based micro-benchmarking, plus the clock-based comparison of
//! §4.3 (Listing 7). `--arch` selects which simulated device the
//! micro-benchmarks run against; the builtin column shows that
//! architecture's ground-truth table.

use bench::{HarnessArgs, DEFAULT_SCALE, STALL_TABLE_OPS};
use cuasmrl::{clock_based_iadd3, dependency_based_stall, StallTable};

fn main() {
    let args = HarnessArgs::parse(DEFAULT_SCALE);
    let gpu = args.gpu();
    println!(
        "Table 1 — fixed-latency instructions and their stall counts{}",
        args.selection_suffix()
    );
    println!("{:<16} {:>10} {:>10}", "instruction", "measured", "builtin");
    let builtin = StallTable::for_arch(&gpu.arch);
    for &op in STALL_TABLE_OPS {
        let measured = dependency_based_stall(&gpu, op).map_or("-".to_string(), |v| v.to_string());
        let expected = builtin
            .lookup(op)
            .map_or("-".to_string(), |v| v.to_string());
        println!("{op:<16} {measured:>10} {expected:>10}");
    }
    let clock = clock_based_iadd3(&gpu, 16);
    println!(
        "\nclock-based IADD3 estimate: {:.1} cycles/instruction over {} instructions \
         (underestimates the dependency-based {} cycles, as §4.3 observes; paper measured 2.6)",
        clock.cycles_per_instruction, clock.instructions, gpu.arch.latency.alu
    );
}
