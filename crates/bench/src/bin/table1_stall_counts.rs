//! Table 1: fixed-latency instructions and their stall counts, recovered by
//! dependency-based micro-benchmarking, plus the clock-based comparison of
//! §4.3 (Listing 7).

use cuasmrl::{clock_based_iadd3, dependency_based_stall, StallTable};
use gpusim::GpuConfig;

fn main() {
    let gpu = GpuConfig::a100();
    println!("Table 1 — fixed-latency instructions and their stall counts");
    println!("{:<16} {:>10} {:>10}", "instruction", "measured", "builtin");
    let builtin = StallTable::builtin_a100();
    for op in [
        "IADD3",
        "IMAD.IADD",
        "IADD3.X",
        "MOV",
        "IABS",
        "IMAD",
        "IMNMX",
        "SEL",
        "LEA",
        "IMAD.WIDE",
        "IMAD.WIDE.U32",
    ] {
        let measured = dependency_based_stall(&gpu, op).map_or("-".to_string(), |v| v.to_string());
        let expected = builtin
            .lookup(op)
            .map_or("-".to_string(), |v| v.to_string());
        println!("{op:<16} {measured:>10} {expected:>10}");
    }
    let clock = clock_based_iadd3(&gpu, 16);
    println!(
        "\nclock-based IADD3 estimate: {:.1} cycles/instruction over {} instructions \
         (underestimates the dependency-based 4 cycles, as §4.3 observes; paper measured 2.6)",
        clock.cycles_per_instruction, clock.instructions
    );
}
