//! §5.6 (Listings 8 and 9): why optimization must happen at the SASS level.
//! The PTX the programmer writes lists the asynchronous copies contiguously;
//! `ptxas -O3` interleaves them with address arithmetic when lowering, so
//! reordering at the PTX level cannot control the placement of the
//! memory instructions that matters for performance.

use kernels::PtxBlock;

fn main() {
    let block = PtxBlock::listing8();
    println!("Listing 8 — PTX written by the programmer:\n");
    println!("{}", block.to_text());
    println!("Listing 9 — SASS produced by the -O3 lowering:\n");
    println!("{}", block.lower_o3());

    let mut reordered = block.clone();
    reordered.instructions.reverse();
    let original_shape: String = block
        .lower_o3()
        .to_string()
        .lines()
        .map(|l| if l.contains("LDGSTS") { 'M' } else { 'A' })
        .collect();
    let reordered_shape: String = reordered
        .lower_o3()
        .to_string()
        .lines()
        .map(|l| if l.contains("LDGSTS") { 'M' } else { 'A' })
        .collect();
    println!("memory/ALU interleaving pattern of the lowered SASS:");
    println!("  original PTX order : {original_shape}");
    println!("  reversed PTX order : {reordered_shape}");
    println!(
        "  identical: {} — PTX-level reordering does not control SASS placement",
        original_shape == reordered_shape
    );
}
