//! Shared helpers for the reproduction harness binaries and Criterion
//! benches. Each table/figure of the paper has a dedicated binary under
//! `src/bin/`; the Criterion benches in `benches/` time the hot paths.
//!
//! Every harness accepts the shared [`HarnessArgs`] flags:
//! `--scale`/`--jobs`/`--smoke` control problem size and parallelism, and
//! `--arch`/`--suite` select the GPU architecture backend and the
//! workload-registry suite (defaults reproduce the paper's
//! single-architecture tables byte for byte).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;

pub use report::{
    compare_reports, iqr_ms, median_ms, ArchStalls, BenchCell, BenchReport, BenchRunConfig,
    CompareTolerance, OpStall, BENCH_REPORT_SCHEMA_VERSION, DELTA_FALLBACK_CEILING,
};

use cuasmrl::{CuAsmRl, GameConfig, OptimizationReport, Strategy, SuiteOptimizer};
use gpusim::{GpuConfig, MeasureOptions};
use kernels::{
    find_suite, generate, ConfigSpace, KernelConfig, KernelKind, KernelSpec, ScheduleStyle,
    WorkloadSuite,
};

/// Scale factor applied to the paper's problem shapes so that every harness
/// binary finishes in seconds on a laptop. Set to 1 to run the full shapes.
pub const DEFAULT_SCALE: usize = 8;

/// The fixed-latency opcodes of the paper's Table 1, micro-benchmarked by
/// `table1_stall_counts` and recorded (as a deterministic regression signal)
/// in every `bench_report` artifact.
pub const STALL_TABLE_OPS: &[&str] = &[
    "IADD3",
    "IMAD.IADD",
    "IADD3.X",
    "MOV",
    "IABS",
    "IMAD",
    "IMNMX",
    "SEL",
    "LEA",
    "IMAD.WIDE",
    "IMAD.WIDE.U32",
];

/// Scale factor used by `--smoke` runs (CI): the deepest shrink the
/// generators support, so a full parallel suite pass finishes in seconds.
pub const SMOKE_SCALE: usize = 64;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Problem-shape divisor (`1/scale` of the paper shapes).
    pub scale: usize,
    /// Worker threads for the parallel suite driver.
    pub jobs: usize,
    /// CI smoke mode: smallest shapes, smallest search budget.
    pub smoke: bool,
    /// GPU architecture profile (`--arch`): `ampere` (default), `turing` or
    /// `hopper`, including the aliases `gpusim::ArchSpec::by_name` accepts.
    pub arch: String,
    /// Workload suite (`--suite`): a name from the `kernels` workload
    /// registry (`table2` default, `attention`, `reduction`).
    pub suite: String,
    /// Artifact directory (`--report-dir`): when set, the suite driver
    /// persists its per-kernel reports, the aggregate suite report and the
    /// telemetry run manifest there (what CI uploads as build artifacts).
    pub report_dir: Option<std::path::PathBuf>,
}

impl HarnessArgs {
    /// Parses `[scale] [--scale N] [--jobs N] [--smoke] [--arch NAME]
    /// [--suite NAME]` from the process arguments. A bare integer is
    /// accepted as the first positional argument (the scale) for backwards
    /// compatibility with the original harness binaries. Malformed or
    /// unknown arguments abort with a usage message rather than being
    /// silently reinterpreted.
    #[must_use]
    pub fn parse(default_scale: usize) -> Self {
        let mut args = HarnessArgs {
            scale: default_scale,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
            smoke: false,
            arch: "ampere".to_string(),
            suite: "table2".to_string(),
            report_dir: None,
        };
        let usage = |problem: &str| -> ! {
            eprintln!("error: {problem}");
            eprintln!(
                "usage: [scale] [--scale N] [--jobs N] [--smoke] [--arch NAME] [--suite NAME] \
                 [--report-dir DIR]"
            );
            eprintln!(
                "  --arch:  {}",
                gpusim::ArchSpec::builtin_names().join(", ")
            );
            eprintln!("  --suite: {}", kernels::suite_names().join(", "));
            std::process::exit(2);
        };
        let mut positional_taken = false;
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--smoke" => {
                    args.smoke = true;
                    args.scale = SMOKE_SCALE;
                }
                "--jobs" => match iter.next().map(|v| v.parse()) {
                    Some(Ok(n)) => args.jobs = n,
                    _ => usage("--jobs requires an integer value"),
                },
                "--scale" => match iter.next().map(|v| v.parse()) {
                    Some(Ok(n)) => args.scale = n,
                    _ => usage("--scale requires an integer value"),
                },
                // Aliases and case variants are canonicalized through the
                // shared `cuasmrl::cli` resolvers so `--arch a100` and
                // `--suite TABLE2` are the default selection, not a
                // cosmetically different one — and so the harness prints
                // the same diagnostics as the examples and the daemon.
                "--arch" => match iter.next() {
                    // Keep the *generation* name, not the device profile's
                    // (`arch.name` would be e.g. "sim-h100-sxm", which
                    // `GpuConfig::by_name` does not resolve).
                    Some(name) => match cuasmrl::cli::resolve_arch(&name) {
                        Ok(arch) => args.arch = arch.arch.name,
                        Err(err) => usage(&err.to_string()),
                    },
                    None => usage("--arch requires a profile name"),
                },
                "--suite" => match iter.next() {
                    Some(name) => match cuasmrl::cli::resolve_suite(&name) {
                        Ok(suite) => args.suite = suite.name.to_string(),
                        Err(err) => usage(&err.to_string()),
                    },
                    None => usage("--suite requires a registry name"),
                },
                "--report-dir" => match iter.next() {
                    Some(dir) => args.report_dir = Some(std::path::PathBuf::from(dir)),
                    None => usage("--report-dir requires a directory path"),
                },
                other => match other.parse() {
                    Ok(n) if !positional_taken && !other.starts_with('-') => {
                        args.scale = n;
                        positional_taken = true;
                    }
                    _ => usage(&format!("unrecognized argument `{other}`")),
                },
            }
        }
        args.jobs = args.jobs.max(1);
        args
    }

    /// The GPU profile selected by `--arch`.
    ///
    /// # Panics
    ///
    /// Panics if the stored name is not a built-in profile (prevented by
    /// `parse`).
    #[must_use]
    pub fn gpu(&self) -> GpuConfig {
        GpuConfig::by_name(&self.arch).expect("parse validated the arch name")
    }

    /// The workload suite selected by `--suite`.
    ///
    /// # Panics
    ///
    /// Panics if the stored name is not registered (prevented by `parse`).
    #[must_use]
    pub fn workload(&self) -> WorkloadSuite {
        find_suite(&self.suite).expect("parse validated the suite name")
    }

    /// A `", arch=..., suite=..."` suffix for harness headlines, empty for
    /// the default selection (keeping default output byte-identical to the
    /// single-architecture harness).
    #[must_use]
    pub fn selection_suffix(&self) -> String {
        let mut suffix = String::new();
        if self.arch != "ampere" {
            suffix.push_str(&format!(", arch={}", self.arch));
        }
        if self.suite != "table2" {
            suffix.push_str(&format!(", suite={}", self.suite));
        }
        suffix
    }

    /// The per-kernel search budget (moves/generations) for this run.
    #[must_use]
    pub fn budget_moves(&self, full: usize) -> usize {
        if self.smoke {
            4
        } else {
            full
        }
    }
}

/// The tuned configuration used for a kernel kind in the harness (a fixed,
/// reasonable configuration so that harness runs are comparable; the
/// autotuner itself is exercised by `fig6_throughput`).
#[must_use]
pub fn harness_config(kind: KernelKind) -> KernelConfig {
    if kind.is_compute_bound() {
        KernelConfig {
            block_m: 64,
            block_n: 64,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        }
    } else {
        KernelConfig {
            block_m: 1,
            block_n: 1024,
            block_k: 1,
            num_warps: 4,
            num_stages: 1,
        }
    }
}

/// Fast measurement protocol used by the harness (the paper uses 100+100
/// iterations; the simulator is deterministic so a handful suffices).
#[must_use]
pub fn harness_measure() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed: 0,
    }
}

/// Builds the parallel suite driver all multi-kernel harnesses share: the
/// (1+1) evolutionary searcher (see [`optimize_kernel`] for why) over the
/// autotuned Triton pipeline, sharded across `jobs` worker threads. In smoke
/// mode the autotuning space collapses to [`ConfigSpace::small`] so a full
/// suite pass stays within a CI minute.
#[must_use]
pub fn suite_driver(args: &HarnessArgs, budget_moves: usize) -> SuiteOptimizer {
    let driver = SuiteOptimizer::new(
        args.gpu(),
        Strategy::Evolutionary {
            generations: budget_moves.max(4),
            mutation_length: 24,
            seed: 0,
        },
    )
    .with_jobs(args.jobs)
    .with_tune_options(harness_measure())
    .with_game_config(GameConfig {
        episode_length: budget_moves.max(32),
        measure: harness_measure(),
        ..GameConfig::default()
    });
    let driver = match &args.report_dir {
        Some(dir) => driver.with_cache_dir(dir.clone()),
        None => driver,
    };
    if args.smoke {
        driver.with_config_space(ConfigSpace::small())
    } else {
        driver
    }
}

/// Outcome tallies of a [`delta_sweep`]: every *legal* adjacent swap of a
/// suite's kernels, evaluated once through the incremental delta engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSweep {
    /// Swaps whose evaluation reconverged with the baseline and spliced its
    /// tail (or were provably unobservable).
    pub spliced: u64,
    /// Swaps that re-simulated to completion but resumed past the shared
    /// prefix (partial reuse).
    pub resumed: u64,
    /// Swaps that fell back to a full re-simulation from cycle zero.
    pub fallbacks: u64,
}

impl DeltaSweep {
    /// `fallbacks / total`, 0 when the sweep is empty. The perf-regression
    /// gate keeps this under 20% on the smoke matrix.
    #[must_use]
    pub fn fallback_rate(&self) -> f64 {
        let total = self.spliced + self.resumed + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.fallbacks as f64 / total as f64
        }
    }
}

/// Deterministically sweeps the delta engine over every legal single swap of
/// every kernel in `suite` at problem scale `1/scale` on `gpu`: records a
/// baseline per kernel, evaluates each masked-legal adjacent swap
/// incrementally and tallies how each evaluation was obtained. Pure
/// simulator output — two runs on any machine produce identical tallies —
/// which makes the fallback rate a machine-independent regression signal
/// for the engine's reconvergence detection.
#[must_use]
pub fn delta_sweep(gpu: &GpuConfig, suite: &WorkloadSuite, scale: usize) -> DeltaSweep {
    use cuasmrl::{action_mask, analyze, Action, Direction, StallTable};
    use gpusim::{CompiledProgram, DeltaEngine, DeltaOutcome};
    let mut sweep = DeltaSweep::default();
    for entry in &suite.entries {
        let spec = entry.spec(scale);
        let kernel = generate(&spec, &harness_config(entry.kind), ScheduleStyle::Baseline);
        let table = StallTable::for_arch(&gpu.arch);
        let analysis = analyze(&kernel.program, &table);
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&kernel.program, &movable, &analysis, &table);
        let compiled = CompiledProgram::compile(&kernel.program, gpu);
        let mut engine = DeltaEngine::for_launch(gpu.clone(), &kernel.launch);
        let baseline = engine.record_baseline(&compiled);
        for (id, &legal) in mask.iter().enumerate() {
            if !legal {
                continue;
            }
            let action = Action::from_id(id);
            let index = movable[action.slot];
            let upper = match action.direction {
                Direction::Up => index - 1,
                Direction::Down => index,
            };
            let mut mutated = compiled.clone();
            mutated.swap_insts(upper, upper + 1);
            let (_, outcome) = engine.simulate_delta(&baseline, &mutated, &[upper, upper + 1]);
            match outcome {
                DeltaOutcome::Unchanged | DeltaOutcome::Spliced { .. } => sweep.spliced += 1,
                DeltaOutcome::Resimulated { resumed_cycle } if resumed_cycle > 0 => {
                    sweep.resumed += 1;
                }
                DeltaOutcome::Resimulated { .. } => sweep.fallbacks += 1,
            }
        }
    }
    sweep
}

/// The rich-action-space counterpart of [`delta_sweep`]: deterministically
/// evaluates every masked-legal [`cuasmrl::ScheduleEdit`] of every kernel in
/// `suite` — adjacent swaps, multi-instruction block moves, reuse-flag
/// toggles, stall retunes and barrier-wait edits — once through the
/// incremental delta engine and tallies how each evaluation was obtained.
/// Content edits touch a single instruction, so their splice rate is the
/// regression signal for the engine's in-place-edit reconvergence (swaps are
/// covered by [`delta_sweep`]; this sweep covers everything the richer
/// action space adds on top).
#[must_use]
pub fn edit_sweep(gpu: &GpuConfig, suite: &WorkloadSuite, scale: usize) -> DeltaSweep {
    use cuasmrl::{analyze, schedule_edits, ActionSpace, StallTable};
    use gpusim::{CompiledProgram, DeltaEngine, DeltaOutcome};
    let mut sweep = DeltaSweep::default();
    for entry in &suite.entries {
        let spec = entry.spec(scale);
        let kernel = generate(&spec, &harness_config(entry.kind), ScheduleStyle::Baseline);
        let table = StallTable::for_arch(&gpu.arch);
        let analysis = analyze(&kernel.program, &table);
        let movable = analysis.movable_memory_indices();
        let edits = schedule_edits(
            &kernel.program,
            &movable,
            &analysis,
            &table,
            ActionSpace::Rich,
        );
        let compiled = CompiledProgram::compile(&kernel.program, gpu);
        let mut engine = DeltaEngine::for_launch(gpu.clone(), &kernel.launch);
        let baseline = engine.record_baseline(&compiled);
        for edit in edits.into_iter().flatten() {
            let mut mutated_program = kernel.program.clone();
            if !edit.apply(&mut mutated_program) {
                continue;
            }
            let mut mutated = compiled.clone();
            edit.apply_to_compiled(&mut mutated, &mutated_program, gpu);
            let (_, outcome) = engine.simulate_delta(&baseline, &mutated, &edit.touched_indices());
            match outcome {
                DeltaOutcome::Unchanged | DeltaOutcome::Spliced { .. } => sweep.spliced += 1,
                DeltaOutcome::Resimulated { resumed_cycle } if resumed_cycle > 0 => {
                    sweep.resumed += 1;
                }
                DeltaOutcome::Resimulated { .. } => sweep.fallbacks += 1,
            }
        }
    }
    sweep
}

/// Optimizes one kernel of the suite on the A100-like device, returning the
/// report (used by several figures).
///
/// The harness defaults to the (1+1) evolutionary searcher over the same
/// masked assembly game: single adjacent swaps often change the runtime of a
/// barrier-bound loop by nothing at all until several copies have been
/// hoisted, so a searcher that evaluates whole move sequences escapes those
/// plateaus far faster than greedy hill climbing, while staying cheap enough
/// for CI. `Strategy::Rl` (the paper's default) is exercised by the
/// `fig8_hyperparams` harness and the `train_rl_agent` example.
#[must_use]
pub fn optimize_kernel(kind: KernelKind, scale: usize, budget_moves: usize) -> OptimizationReport {
    let spec = KernelSpec::scaled(kind, scale);
    let config = harness_config(kind);
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    let game = GameConfig {
        episode_length: budget_moves.max(32),
        measure: harness_measure(),
        ..GameConfig::default()
    };
    let optimizer = CuAsmRl::new(
        GpuConfig::a100(),
        Strategy::Evolutionary {
            generations: budget_moves.max(8),
            mutation_length: 24,
            seed: 0,
        },
    )
    .with_game_config(game);
    optimizer.optimize_program(&kernel.name, kernel.program, kernel.launch)
}
