//! Shared helpers for the reproduction harness binaries and Criterion
//! benches. Each table/figure of the paper has a dedicated binary under
//! `src/bin/`; the Criterion benches in `benches/` time the hot paths.

use cuasmrl::{CuAsmRl, GameConfig, OptimizationReport, Strategy};
use gpusim::{GpuConfig, MeasureOptions};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};

/// Scale factor applied to the paper's problem shapes so that every harness
/// binary finishes in seconds on a laptop. Set to 1 to run the full shapes.
pub const DEFAULT_SCALE: usize = 8;

/// The tuned configuration used for a kernel kind in the harness (a fixed,
/// reasonable configuration so that harness runs are comparable; the
/// autotuner itself is exercised by `fig6_throughput`).
#[must_use]
pub fn harness_config(kind: KernelKind) -> KernelConfig {
    if kind.is_compute_bound() {
        KernelConfig {
            block_m: 64,
            block_n: 64,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        }
    } else {
        KernelConfig {
            block_m: 1,
            block_n: 1024,
            block_k: 1,
            num_warps: 4,
            num_stages: 1,
        }
    }
}

/// Fast measurement protocol used by the harness (the paper uses 100+100
/// iterations; the simulator is deterministic so a handful suffices).
#[must_use]
pub fn harness_measure() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed: 0,
    }
}

/// Optimizes one kernel of the suite on the A100-like device, returning the
/// report (used by several figures).
///
/// The harness defaults to the (1+1) evolutionary searcher over the same
/// masked assembly game: single adjacent swaps often change the runtime of a
/// barrier-bound loop by nothing at all until several copies have been
/// hoisted, so a searcher that evaluates whole move sequences escapes those
/// plateaus far faster than greedy hill climbing, while staying cheap enough
/// for CI. `Strategy::Rl` (the paper's default) is exercised by the
/// `fig8_hyperparams` harness and the `train_rl_agent` example.
#[must_use]
pub fn optimize_kernel(kind: KernelKind, scale: usize, budget_moves: usize) -> OptimizationReport {
    let spec = KernelSpec::scaled(kind, scale);
    let config = harness_config(kind);
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    let game = GameConfig {
        episode_length: budget_moves.max(32),
        measure: harness_measure(),
    };
    let optimizer = CuAsmRl::new(
        GpuConfig::a100(),
        Strategy::Evolutionary {
            generations: budget_moves.max(8),
            mutation_length: 24,
            seed: 0,
        },
    )
    .with_game_config(game);
    optimizer.optimize_program(&kernel.name, kernel.program, kernel.launch)
}
