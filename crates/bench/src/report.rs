//! The canonical benchmark-report artifact and its regression comparator.
//!
//! `bench_report run` emits a [`BenchReport`]: one [`BenchCell`] per
//! (architecture × workload suite) combination holding the wall-clock
//! samples of repeated full suite passes (median + interquartile range) next
//! to the machine-independent quality metrics of the run (geometric-mean
//! speedup, verified-kernel count), plus the deterministic
//! dependency-measured stall table per architecture. `bench_report compare`
//! diffs a candidate report against a committed baseline with
//! [`compare_reports`] and fails (nonzero exit) on any regression — this is
//! what gates CI, replacing the old ad-hoc absolute wall-clock budget.
//!
//! Comparison semantics: wall clock is machine-dependent, so it is gated by
//! a *relative* tolerance the caller picks per context (tight for
//! same-machine A/B, loose for a committed cross-machine baseline). The
//! quality metrics and stall counts are deterministic products of the
//! simulator, so they are gated strictly (small quality tolerance, exact
//! stall match).

use serde::{Deserialize, Serialize};

/// Version of the benchmark-report JSON schema (see `docs/ARTIFACTS.md`).
pub const BENCH_REPORT_SCHEMA_VERSION: u32 = 1;

/// The run configuration a report was produced under.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchRunConfig {
    /// Problem-shape divisor (`1/scale` of the paper shapes).
    pub scale: usize,
    /// Worker threads of the parallel suite driver.
    pub jobs: usize,
    /// Whether the smoke (CI) configuration was used.
    pub smoke: bool,
    /// Wall-clock samples collected per cell.
    pub runs: usize,
}

/// One (architecture × suite) cell of the benchmark matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCell {
    /// Architecture profile name.
    pub arch: String,
    /// Workload-registry suite name.
    pub suite: String,
    /// Wall-clock of each full suite pass, milliseconds, in run order.
    pub runs_ms: Vec<f64>,
    /// Median of `runs_ms`.
    pub median_ms: f64,
    /// Interquartile range of `runs_ms`.
    pub iqr_ms: f64,
    /// Geometric-mean speedup over the `-O3` baseline (deterministic).
    pub geomean_speedup: f64,
    /// Kernels whose optimized schedule verified (deterministic).
    pub verified: usize,
    /// Total kernels in the suite.
    pub kernels: usize,
    /// Delta-engine sweep: legal single swaps whose incremental evaluation
    /// spliced the baseline tail (or was provably unobservable).
    /// Deterministic; absent (zero) in pre-delta reports.
    #[serde(default)]
    pub delta_spliced: u64,
    /// Sweep evaluations that re-simulated but reused the shared prefix.
    #[serde(default)]
    pub delta_resumed: u64,
    /// Sweep evaluations that fell back to a full re-simulation from cycle
    /// zero. Gated below 20% of the sweep by [`compare_reports`].
    #[serde(default)]
    pub delta_fallbacks: u64,
}

impl BenchCell {
    /// The `arch/suite` key of this cell.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{}", self.arch, self.suite)
    }

    /// Total delta-sweep evaluations recorded in this cell (0 for reports
    /// predating the delta engine).
    #[must_use]
    pub fn delta_attempts(&self) -> u64 {
        self.delta_spliced + self.delta_resumed + self.delta_fallbacks
    }

    /// `delta_fallbacks / delta_attempts`, 0 when no sweep was recorded.
    #[must_use]
    pub fn delta_fallback_rate(&self) -> f64 {
        let attempts = self.delta_attempts();
        if attempts == 0 {
            0.0
        } else {
            self.delta_fallbacks as f64 / attempts as f64
        }
    }
}

/// Ceiling on a cell's delta-engine fallback rate: reconvergence detection
/// rotting shows up as full re-simulations, so the smoke matrix gates the
/// rate strictly (the metric is a deterministic simulator output).
pub const DELTA_FALLBACK_CEILING: f64 = 0.2;

/// One opcode's dependency-measured stall count on one architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStall {
    /// Opcode name (e.g. `IADD3`).
    pub op: String,
    /// Measured stall cycles; `None` when the micro-benchmark cannot
    /// resolve the opcode on this architecture.
    pub stall: Option<u32>,
}

/// The deterministic stall table measured on one architecture (the Table 1
/// reproduction, used as a machine-independent regression signal).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchStalls {
    /// Architecture profile name.
    pub arch: String,
    /// Per-opcode measured stalls, in a fixed opcode order.
    pub stalls: Vec<OpStall>,
}

/// The canonical benchmark-report artifact (`BENCH_*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema version ([`BENCH_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing tool, always `"bench_report"`.
    pub tool: String,
    /// Run configuration.
    pub config: BenchRunConfig,
    /// Matrix cells, sorted by `arch/suite` key.
    pub cells: Vec<BenchCell>,
    /// Deterministic stall tables, sorted by architecture.
    pub stall_counts: Vec<ArchStalls>,
}

impl BenchReport {
    /// Looks up a cell by architecture and suite.
    #[must_use]
    pub fn cell(&self, arch: &str, suite: &str) -> Option<&BenchCell> {
        self.cells
            .iter()
            .find(|c| c.arch == arch && c.suite == suite)
    }
}

/// Tolerances for [`compare_reports`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareTolerance {
    /// Maximum allowed relative wall-clock growth: a candidate median above
    /// `baseline * (1 + time)` is a regression. Machine-dependent, so pick
    /// per context (e.g. `0.1` for same-machine A/B, much looser against a
    /// committed baseline from different hardware).
    pub time: f64,
    /// Maximum allowed relative drop of the geometric-mean speedup. The
    /// metric is deterministic, so this stays small.
    pub quality: f64,
}

impl Default for CompareTolerance {
    fn default() -> Self {
        CompareTolerance {
            time: 0.1,
            quality: 0.02,
        }
    }
}

/// Compares a candidate report against a baseline and returns one
/// human-readable line per regression (empty = no regression). Extra cells
/// in the candidate (new coverage) are never regressions; cells or
/// architectures missing from the candidate always are.
#[must_use]
pub fn compare_reports(
    baseline: &BenchReport,
    candidate: &BenchReport,
    tolerance: &CompareTolerance,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for base in &baseline.cells {
        let key = base.key();
        let Some(cand) = candidate.cell(&base.arch, &base.suite) else {
            regressions.push(format!("{key}: cell missing from candidate report"));
            continue;
        };
        let time_limit = base.median_ms * (1.0 + tolerance.time);
        if cand.median_ms > time_limit {
            regressions.push(format!(
                "{key}: median wall clock {:.1} ms exceeds {:.1} ms \
                 (baseline {:.1} ms + {:.0}% tolerance)",
                cand.median_ms,
                time_limit,
                base.median_ms,
                tolerance.time * 100.0
            ));
        }
        let quality_floor = base.geomean_speedup * (1.0 - tolerance.quality);
        if cand.geomean_speedup < quality_floor {
            regressions.push(format!(
                "{key}: geomean speedup {:.4}x fell below {:.4}x \
                 (baseline {:.4}x - {:.0}% tolerance)",
                cand.geomean_speedup,
                quality_floor,
                base.geomean_speedup,
                tolerance.quality * 100.0
            ));
        }
        if cand.verified < base.verified {
            regressions.push(format!(
                "{key}: verified kernels dropped {} -> {}",
                base.verified, cand.verified
            ));
        }
        if cand.kernels < base.kernels {
            regressions.push(format!(
                "{key}: suite coverage shrank {} -> {} kernels",
                base.kernels, cand.kernels
            ));
        }
        // Delta-engine health: a candidate that recorded a sweep must keep
        // its fallback rate under the ceiling, and once a baseline carries
        // sweep data a candidate may not silently drop it.
        if cand.delta_attempts() > 0 && cand.delta_fallback_rate() >= DELTA_FALLBACK_CEILING {
            regressions.push(format!(
                "{key}: delta-engine fallback rate {:.1}% reached the {:.0}% ceiling \
                 ({} fallbacks / {} evaluations)",
                cand.delta_fallback_rate() * 100.0,
                DELTA_FALLBACK_CEILING * 100.0,
                cand.delta_fallbacks,
                cand.delta_attempts()
            ));
        }
        if base.delta_attempts() > 0 && cand.delta_attempts() == 0 {
            regressions.push(format!(
                "{key}: delta-engine sweep missing from candidate (baseline recorded {})",
                base.delta_attempts()
            ));
        }
    }
    for base_arch in &baseline.stall_counts {
        let Some(cand_arch) = candidate
            .stall_counts
            .iter()
            .find(|a| a.arch == base_arch.arch)
        else {
            regressions.push(format!(
                "{}: stall table missing from candidate report",
                base_arch.arch
            ));
            continue;
        };
        for base_op in &base_arch.stalls {
            let cand_stall = cand_arch
                .stalls
                .iter()
                .find(|o| o.op == base_op.op)
                .map(|o| o.stall);
            if cand_stall != Some(base_op.stall) {
                regressions.push(format!(
                    "{}/{}: stall count changed {:?} -> {:?} \
                     (deterministic metric; regenerate the baseline if intended)",
                    base_arch.arch,
                    base_op.op,
                    base_op.stall,
                    cand_stall.flatten()
                ));
            }
        }
    }
    regressions
}

/// Median of a sample set (mean of the two central elements for even sizes).
/// Returns 0 for an empty set.
#[must_use]
pub fn median_ms(samples: &[f64]) -> f64 {
    percentile_pair(samples).map_or(0.0, |sorted| {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    })
}

/// Interquartile range (q3 - q1, nearest-rank quartiles) of a sample set.
/// Returns 0 for fewer than two samples.
#[must_use]
pub fn iqr_ms(samples: &[f64]) -> f64 {
    percentile_pair(samples).map_or(0.0, |sorted| {
        let n = sorted.len();
        if n < 2 {
            return 0.0;
        }
        let q1 = sorted[(n - 1) / 4];
        let q3 = sorted[(3 * (n - 1)).div_ceil(4)];
        q3 - q1
    })
}

fn percentile_pair(samples: &[f64]) -> Option<Vec<f64>> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            schema_version: BENCH_REPORT_SCHEMA_VERSION,
            tool: "bench_report".to_string(),
            config: BenchRunConfig {
                scale: 64,
                jobs: 4,
                smoke: true,
                runs: 5,
            },
            cells: vec![BenchCell {
                arch: "ampere".to_string(),
                suite: "table2".to_string(),
                runs_ms: vec![150.0, 148.0, 162.0, 152.0, 149.0],
                median_ms: 150.0,
                iqr_ms: 4.0,
                geomean_speedup: 1.009,
                verified: 6,
                kernels: 6,
                delta_spliced: 12,
                delta_resumed: 5,
                delta_fallbacks: 1,
            }],
            stall_counts: vec![ArchStalls {
                arch: "ampere".to_string(),
                stalls: vec![
                    OpStall {
                        op: "IADD3".to_string(),
                        stall: Some(4),
                    },
                    OpStall {
                        op: "IMAD".to_string(),
                        stall: Some(5),
                    },
                ],
            }],
        }
    }

    #[test]
    fn identical_reports_show_no_regression() {
        let a = report();
        assert!(compare_reports(&a, &a.clone(), &CompareTolerance::default()).is_empty());
    }

    #[test]
    fn delta_fallback_ceiling_gates_the_candidate() {
        let base = report();
        // 5 fallbacks of 18 evaluations = 27.8% >= the 20% ceiling.
        let mut rotted = base.clone();
        rotted.cells[0].delta_spliced = 9;
        rotted.cells[0].delta_resumed = 4;
        rotted.cells[0].delta_fallbacks = 5;
        let regressions = compare_reports(&base, &rotted, &CompareTolerance::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("fallback rate"));
        // Dropping the sweep entirely is also a regression.
        let mut missing = base.clone();
        missing.cells[0].delta_spliced = 0;
        missing.cells[0].delta_resumed = 0;
        missing.cells[0].delta_fallbacks = 0;
        let regressions = compare_reports(&base, &missing, &CompareTolerance::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("sweep missing"));
    }

    #[test]
    fn pre_delta_reports_still_parse_with_zero_sweeps() {
        // A v1-era cell without the delta fields must decode with zeroed
        // tallies (schema evolution for the committed baseline history).
        let json = r#"{
            "arch": "ampere", "suite": "table2",
            "runs_ms": [150.0], "median_ms": 150.0, "iqr_ms": 0.0,
            "geomean_speedup": 1.009, "verified": 6, "kernels": 6
        }"#;
        let cell: BenchCell = serde_json::from_str(json).expect("pre-delta cells must decode");
        assert_eq!(cell.delta_attempts(), 0);
        assert_eq!(cell.delta_fallback_rate(), 0.0);
    }

    #[test]
    fn injected_twenty_percent_slowdown_regresses_at_default_tolerance() {
        let base = report();
        let mut slow = base.clone();
        for cell in &mut slow.cells {
            cell.median_ms *= 1.2;
            for run in &mut cell.runs_ms {
                *run *= 1.2;
            }
        }
        let regressions = compare_reports(&base, &slow, &CompareTolerance::default());
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("median wall clock"));
        // A looser time tolerance accepts the same slowdown.
        assert!(compare_reports(
            &base,
            &slow,
            &CompareTolerance {
                time: 0.5,
                quality: 0.02
            }
        )
        .is_empty());
    }

    #[test]
    fn quality_and_coverage_regressions_are_caught_regardless_of_time() {
        let base = report();
        let loose = CompareTolerance {
            time: 100.0,
            quality: 0.02,
        };
        let mut worse = base.clone();
        worse.cells[0].geomean_speedup = 0.9;
        assert!(compare_reports(&base, &worse, &loose)[0].contains("geomean"));
        let mut unverified = base.clone();
        unverified.cells[0].verified = 4;
        assert!(compare_reports(&base, &unverified, &loose)[0].contains("verified"));
        let mut shrunk = base.clone();
        shrunk.cells[0].kernels = 5;
        shrunk.cells[0].verified = 6; // verified unchanged, coverage shrank
        assert!(compare_reports(&base, &shrunk, &loose)[0].contains("coverage"));
        let mut missing = base.clone();
        missing.cells.clear();
        assert!(compare_reports(&base, &missing, &loose)[0].contains("missing"));
    }

    #[test]
    fn stall_count_drift_is_a_strict_regression() {
        let base = report();
        let mut drifted = base.clone();
        drifted.stall_counts[0].stalls[1].stall = Some(6);
        let regressions = compare_reports(&base, &drifted, &CompareTolerance::default());
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("IMAD"));
        let mut gone = base.clone();
        gone.stall_counts.clear();
        assert!(!compare_reports(&base, &gone, &CompareTolerance::default()).is_empty());
    }

    #[test]
    fn median_and_iqr_are_deterministic() {
        assert_eq!(median_ms(&[]), 0.0);
        assert_eq!(median_ms(&[3.0]), 3.0);
        assert_eq!(median_ms(&[4.0, 2.0]), 3.0);
        assert_eq!(median_ms(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(iqr_ms(&[1.0]), 0.0);
        assert_eq!(iqr_ms(&[1.0, 2.0, 3.0, 4.0, 5.0]), 2.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let original = report();
        let json = serde_json::to_string_pretty(&original).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, original);
    }
}
