//! Criterion benches over the hot paths of the reproduction: kernel
//! measurement (the reward signal), the pre-game analysis + embedding, the
//! action-mask computation, and one optimization pass per evaluated kernel
//! (the Figure 6 workload at reduced scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{harness_config, harness_measure, optimize_kernel};
use cuasmrl::{action_mask, analyze, dependency_based_stall, embed_program, StallTable};
use gpusim::{measure, GpuConfig};
use kernels::{generate, KernelKind, KernelSpec, ScheduleStyle};

fn bench_reward_measurement(c: &mut Criterion) {
    let gpu = GpuConfig::a100();
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let kernel = generate(
        &spec,
        &harness_config(KernelKind::MatmulLeakyRelu),
        ScheduleStyle::Baseline,
    );
    let opts = harness_measure();
    c.bench_function("reward/measure_fused_gemm", |b| {
        b.iter(|| measure(&gpu, &kernel.program, &kernel.launch, &opts))
    });
}

fn bench_analysis_and_embedding(c: &mut Criterion) {
    let spec = KernelSpec::scaled(KernelKind::FusedFeedForward, 16);
    let kernel = generate(
        &spec,
        &harness_config(KernelKind::FusedFeedForward),
        ScheduleStyle::Baseline,
    );
    let table = StallTable::builtin_a100();
    c.bench_function("pregame/analyze", |b| {
        b.iter(|| analyze(&kernel.program, &table))
    });
    let analysis = analyze(&kernel.program, &table);
    c.bench_function("pregame/embed", |b| {
        b.iter(|| embed_program(&kernel.program, &analysis, &GpuConfig::a100().arch))
    });
    let movable = analysis.movable_memory_indices();
    c.bench_function("pregame/action_mask", |b| {
        b.iter(|| action_mask(&kernel.program, &movable, &analysis, &table))
    });
}

fn bench_table1_microbenchmark(c: &mut Criterion) {
    let gpu = GpuConfig::a100();
    c.bench_function("table1/dependency_microbench_iadd3", |b| {
        b.iter(|| dependency_based_stall(&gpu, "IADD3"))
    });
}

fn bench_fig6_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_optimize");
    group.sample_size(10);
    for kind in [KernelKind::MatmulLeakyRelu, KernelKind::Softmax] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| optimize_kernel(kind, 16, 6)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reward_measurement,
    bench_analysis_and_embedding,
    bench_table1_microbenchmark,
    bench_fig6_optimization
);
criterion_main!(benches);
