//! Criterion benches over the incremental hot paths added by the delta
//! engine: `sim_delta_vs_full` times one legal-swap evaluation through
//! [`gpusim::DeltaEngine::simulate_delta`] against the equivalent full
//! [`gpusim::SmSimulator::run_compiled`] (plus the baseline recording both
//! share), and `mask_incremental` times the block-local mask update of
//! [`cuasmrl::IncrementalMasker`] against a from-scratch
//! [`cuasmrl::action_mask`]. Both run once under `cargo bench -- --test`
//! (the CI smoke).

use criterion::{criterion_group, criterion_main, Criterion};

use bench::harness_config;
use cuasmrl::{action_mask, analyze, Action, Direction, IncrementalMasker, StallTable};
use gpusim::{CompiledProgram, DeltaEngine, GpuConfig, SmSimulator};
use kernels::{generate, GeneratedKernel, KernelKind, KernelSpec, ScheduleStyle};

fn bench_kernel() -> GeneratedKernel {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    generate(
        &spec,
        &harness_config(KernelKind::MatmulLeakyRelu),
        ScheduleStyle::Baseline,
    )
}

/// The first masked-legal swap of the kernel (what the game's inner loop
/// evaluates), as `(upper_index, movable, analysis)`.
fn first_legal_swap(kernel: &GeneratedKernel, table: &StallTable) -> usize {
    let analysis = analyze(&kernel.program, table);
    let movable = analysis.movable_memory_indices();
    let mask = action_mask(&kernel.program, &movable, &analysis, table);
    let id = mask
        .iter()
        .position(|&legal| legal)
        .expect("bench kernel must expose a legal action");
    let action = Action::from_id(id);
    let index = movable[action.slot];
    match action.direction {
        Direction::Up => index - 1,
        Direction::Down => index,
    }
}

fn bench_sim_delta_vs_full(c: &mut Criterion) {
    let gpu = GpuConfig::a100();
    let kernel = bench_kernel();
    let table = StallTable::for_arch(&gpu.arch);
    let upper = first_legal_swap(&kernel, &table);
    let compiled = CompiledProgram::compile(&kernel.program, &gpu);
    let mut mutated = compiled.clone();
    mutated.swap_insts(upper, upper + 1);

    let mut engine = DeltaEngine::for_launch(gpu.clone(), &kernel.launch);
    let baseline = engine.record_baseline(&compiled);
    c.bench_function("sim_delta_vs_full/delta_swap", |b| {
        b.iter(|| engine.simulate_delta(&baseline, &mutated, &[upper, upper + 1]))
    });
    let simulator = SmSimulator::new(gpu.clone());
    let warps = gpusim::resident_warps(&gpu, &kernel.launch);
    let constants = kernel.launch.constant_bank();
    c.bench_function("sim_delta_vs_full/full_swap", |b| {
        b.iter(|| simulator.run_compiled(&mutated, warps, 0, &constants, kernel.launch.max_cycles))
    });
    c.bench_function("sim_delta_vs_full/record_baseline", |b| {
        b.iter(|| {
            let recorded = engine.record_baseline(&compiled);
            engine.recycle_baseline(recorded);
        })
    });
}

fn bench_mask_incremental(c: &mut Criterion) {
    let kernel = bench_kernel();
    let table = StallTable::builtin_a100();
    let upper = first_legal_swap(&kernel, &table);
    let mut swapped = kernel.program.clone();
    swapped
        .swap_instructions(upper, upper + 1)
        .expect("legal swap applies");
    let analysis = analyze(&kernel.program, &table);
    let movable = analysis.movable_memory_indices();
    let mask = action_mask(&kernel.program, &movable, &analysis, &table);
    let swapped_analysis = analyze(&swapped, &table);
    let swapped_movable = swapped_analysis.movable_memory_indices();
    let masker = IncrementalMasker::new(&kernel.program, &analysis, &table);

    c.bench_function("mask_incremental/incremental_update", |b| {
        b.iter(|| {
            let mut updated = masker.clone();
            updated.apply_swap(upper);
            updated.mask_after_swap(upper, &swapped_movable, &swapped_analysis, &movable, &mask)
        })
    });
    c.bench_function("mask_incremental/full_recompute", |b| {
        b.iter(|| action_mask(&swapped, &swapped_movable, &swapped_analysis, &table))
    });
}

criterion_group!(benches, bench_sim_delta_vs_full, bench_mask_incremental);
criterion_main!(benches);
