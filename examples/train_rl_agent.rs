//! Train the PPO agent on the assembly game for one kernel and print the
//! training curves (the data behind Figures 8 and 12 of the paper).
//!
//! ```text
//! cargo run --release --example train_rl_agent
//! ```

use cuasmrl::{AssemblyGame, GameConfig, StallTable};
use gpusim::GpuConfig;
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use rl::{Env, PpoConfig, PpoTrainer};

fn main() {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    let mut game = AssemblyGame::new(
        GpuConfig::small(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        GameConfig::default(),
    );
    println!("baseline runtime: {:.2} us", game.initial_runtime_us());

    let ppo = PpoConfig {
        total_steps: 1024,
        rollout_steps: 64,
        learning_rate: 1e-3,
        ..PpoConfig::tiny()
    };
    let mut trainer = PpoTrainer::new(ppo, game.observation_features(), game.action_count());
    let stats = trainer.train(&mut game);

    println!("episodes: {}", stats.episodic_returns.len());
    println!(
        "final episodic return (mean of last 5): {:.3}",
        stats.final_return(5)
    );
    println!("update  approx_kl  entropy");
    for (i, (kl, h)) in stats.approx_kl.iter().zip(&stats.entropy).enumerate() {
        println!("{i:>6}  {kl:>9.5}  {h:>7.4}");
    }
    let (_, best) = game.best();
    println!(
        "best runtime found during training: {:.2} us ({:.2}% faster)",
        best,
        (game.initial_runtime_us() - best) / game.initial_runtime_us() * 100.0
    );
}
