//! A real training run with a mid-run kill and resume, self-checked against
//! an uninterrupted control run — the driver the nightly CI workflow
//! executes to prove the checkpoint contract on the actual assembly game,
//! publishing the checkpoint and telemetry artifacts it produces.
//!
//! ```text
//! cargo run --release --example checkpointed_training -- [ARTIFACT_DIR]
//! ```
//!
//! Exits nonzero (assertion failure) if the resumed run diverges from the
//! uninterrupted one by a single bit, in either the policy weights or the
//! optimized schedule.

use cuasmrl::{AssemblyGame, GameConfig, StallTable, TrainingTelemetry};
use gpusim::GpuConfig;
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use rl::{Env, PpoConfig, PpoTrainer};

fn game() -> AssemblyGame {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 8);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    AssemblyGame::new(
        GpuConfig::small(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        GameConfig::default(),
    )
}

fn ppo() -> PpoConfig {
    PpoConfig {
        total_steps: 512,
        rollout_steps: 64,
        learning_rate: 1e-3,
        ..PpoConfig::tiny()
    }
}

fn main() {
    let artifact_dir = std::env::args()
        .nth(1)
        .map_or_else(|| std::path::PathBuf::from("nightly-artifacts"), Into::into);
    std::fs::create_dir_all(&artifact_dir).expect("create the artifact directory");
    let checkpoint_path = artifact_dir.join("training_run.ckpt");

    // Uninterrupted control run.
    let mut control_game = game();
    let mut control = PpoTrainer::new(
        ppo(),
        control_game.observation_features(),
        control_game.action_count(),
    );
    let control_stats = control.train(&mut control_game);
    let total_updates = control.total_updates();
    println!(
        "control: {} updates, {} steps, final return {:.3}, best {:.2} us",
        total_updates,
        control_stats.steps,
        control_stats.final_return(5),
        control_game.best().1
    );

    // Interrupted run: train halfway, checkpoint, drop everything.
    let interrupt_after = (total_updates / 2).max(1);
    {
        let mut interrupted_game = game();
        let mut trainer = PpoTrainer::new(
            ppo(),
            interrupted_game.observation_features(),
            interrupted_game.action_count(),
        );
        trainer.train_updates(&mut interrupted_game, interrupt_after);
        trainer
            .save_checkpoint(&interrupted_game, &checkpoint_path)
            .expect("write the mid-run checkpoint");
        println!(
            "interrupted after update {interrupt_after}/{total_updates}; checkpoint at {}",
            checkpoint_path.display()
        );
    }

    // Fresh "process": reconstruct the game, resume, finish.
    let mut resumed_game = game();
    let mut resumed = PpoTrainer::resume_from(&checkpoint_path, &mut resumed_game).expect("resume");
    let resumed_stats = resumed.train(&mut resumed_game);

    // The resumed run must be bit-identical to the control.
    let control_state = control.policy().state();
    let resumed_state = resumed.policy().state();
    assert_eq!(
        resumed_state, control_state,
        "resumed policy diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed_game.best().0.to_string(),
        control_game.best().0.to_string(),
        "resumed optimized schedule diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed_game.best().1.to_bits(),
        control_game.best().1.to_bits()
    );
    assert_eq!(resumed_stats.steps, control_stats.steps);
    println!("resume check passed: policy weights and optimized schedule are bit-identical");

    // Publish the training telemetry of the (resumed) run.
    let telemetry = TrainingTelemetry::from_stats(&resumed_stats);
    let telemetry_path = artifact_dir.join("training_telemetry.json");
    let json = serde_json::to_string_pretty(&telemetry).expect("serialize telemetry");
    std::fs::write(&telemetry_path, json + "\n").expect("write telemetry");
    println!("training telemetry at {}", telemetry_path.display());
}
