//! Quickstart: optimize one Triton-style kernel end to end.
//!
//! ```text
//! cargo run --release --example quickstart -- [--arch NAME]
//! ```
//!
//! `--arch` accepts any built-in profile name or alias (`ampere`/`a100`,
//! `turing`, `hopper`), canonicalized by `cuasmrl::cli::resolve_arch`.

use cuasmrl::{cli, CuAsmRl, Strategy};
use gpusim::{GpuConfig, MeasureOptions};
use kernels::{ConfigSpace, KernelKind, KernelSpec};

fn main() {
    let mut gpu = GpuConfig::a100();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--arch" => match cli::resolve_arch(&args.next().unwrap_or_default()) {
                Ok(selected) => gpu = selected,
                Err(err) => {
                    eprintln!("error: {err}");
                    std::process::exit(2);
                }
            },
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }

    // A scaled-down fused GEMM + LeakyReLU so the example runs in seconds;
    // use `KernelSpec::paper(..)` for the full Table-2 shape.
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 8);

    // Hierarchical search (§3.1): autotune the kernel configuration, compile,
    // intercept the cubin and play the assembly game with greedy search.
    // Swap the strategy for `Strategy::Rl(rl::PpoConfig::default())` to train
    // the PPO agent as in the paper (minutes instead of seconds).
    let optimizer = CuAsmRl::new(gpu, Strategy::Greedy { max_moves: 16 });
    let tune_options = MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed: 0,
    };
    let (report, cubin) = optimizer.optimize_spec(&spec, &ConfigSpace::small(), &tune_options);

    println!("kernel            : {}", report.kernel);
    println!("baseline (Triton) : {:.2} us", report.baseline_us);
    println!("CuAsmRL           : {:.2} us", report.optimized_us);
    println!("speedup           : {:.3}x", report.speedup);
    println!("verified          : {}", report.verified);
    println!("moves applied     : {}", report.moves.len());
    for (i, m) in report.moves.iter().enumerate() {
        println!("  move {i}: {:?} {}", m.direction, m.text.trim());
    }
    println!("optimized cubin kernels: {:?}", cubin.kernel_names());
}
