//! Reproduce the "automatic discovery of optimization moves" analysis
//! (§5.7, Figures 9 and 13): optimize the fused GEMM + LeakyReLU kernel,
//! then print the reordering trace and classify the moves.
//!
//! ```text
//! cargo run --release --example discover_moves
//! ```

use cuasmrl::{CuAsmRl, Strategy};
use gpusim::GpuConfig;
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};

fn main() {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 8);
    let config = KernelConfig {
        block_m: 64,
        block_n: 64,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    let optimizer = CuAsmRl::new(GpuConfig::a100(), Strategy::Greedy { max_moves: 24 });
    let report = optimizer.optimize_program(&kernel.name, kernel.program, kernel.launch);

    println!(
        "{}: {:.2} us -> {:.2} us ({:.2}x, verified={})",
        report.kernel, report.baseline_us, report.optimized_us, report.speedup, report.verified
    );
    println!("\ndiscovered moves:");
    for m in &report.moves {
        let kind = if m.text.contains("LDGSTS") {
            // Figure 9 / 13: asynchronous copies hoisted earlier (equivalently,
            // tensor-core or predicated-off loads scheduled after them).
            "hoist LDGSTS (Fig. 9/13 pattern)"
        } else if m.text.contains("LDS") {
            "reschedule shared-memory load"
        } else {
            "reschedule memory instruction"
        };
        println!(
            "  {:>5.2} reward  {:?}  {}  [{kind}]",
            m.reward,
            m.direction,
            m.text.trim()
        );
    }
}
