//! Quickstart for the `cuasmrld` optimization service: start an
//! in-process daemon on an ephemeral port, pipeline a batch of requests
//! over one persistent protocol-v2 connection, then send the same
//! request again and watch the answer come back from the persistent
//! schedule store. See `docs/SERVICE.md` for the protocol and the
//! runbook.
//!
//! ```text
//! cargo run --release --example service_quickstart
//! ```

use cuasmrl::GameConfig;
use cuasmrld::{Client, ClientBuilder, OptimizeRequest, OptimizeResponse, Server, ServerConfig};
use gpusim::MeasureOptions;

fn main() {
    // Fast simulation settings (what `cuasmrld --fast` uses) so the
    // example finishes in seconds.
    let fast_measure = MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    };
    let store_dir = std::env::temp_dir().join(format!("cuasmrld-qs-{}", std::process::id()));
    let mut config = ServerConfig::new(&store_dir);
    config.scale = 16;
    config.tune_options = fast_measure.clone();
    config.game_config = GameConfig {
        episode_length: 8,
        measure: fast_measure,
        ..GameConfig::default()
    };
    let server = Server::start(config).expect("daemon starts");
    println!("daemon listening on {}", server.local_addr());

    // Protocol v2: one persistent connection, several requests in flight
    // at once. Each handle resolves whenever the server answers its id —
    // waiting order is free.
    let connection = ClientBuilder::new(server.local_addr())
        .connect()
        .expect("session connects");
    let handles: Vec<_> = ["softmax", "bmm", "rmsnorm"]
        .iter()
        .map(|kernel| {
            connection
                .submit(&OptimizeRequest::table2(*kernel, "ampere"))
                .expect("pipelined submit")
        })
        .collect();
    for handle in handles.into_iter().rev() {
        match handle.wait().expect("pipelined answer") {
            OptimizeResponse::Ok(result) => println!(
                "pipelined: kernel={} speedup={:.3}x verified={} from_store={}",
                result.kernel, result.report.speedup, result.report.verified, result.from_store
            ),
            OptimizeResponse::Err(error) => println!("pipelined: error {error}"),
            OptimizeResponse::Status(_) => unreachable!("optimize requests never answer status"),
        }
    }
    drop(connection);

    // The one-shot facade still works; this repeat is a store hit.
    let client = Client::new(server.local_addr());
    let request = OptimizeRequest::table2("softmax", "ampere");
    match client.request(&request).expect("exchange") {
        OptimizeResponse::Ok(result) => println!(
            "repeat request: kernel={} from_store={}",
            result.kernel, result.from_store
        ),
        OptimizeResponse::Err(error) => println!("repeat request: error {error}"),
        OptimizeResponse::Status(_) => unreachable!("optimize requests never answer status"),
    }
    let status = client.status().expect("status probe");
    println!(
        "status probe: {} requests, {} computed, {} store hits, draining={}",
        status.stats.requests, status.stats.computed, status.stats.store_hits, status.draining
    );
    println!(
        "store entries on disk under {}: answers survive a daemon restart",
        store_dir.display()
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}
