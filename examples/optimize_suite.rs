//! Optimize a registry workload suite in parallel and persist the schedules
//! for deploy-time lookup (§4.2).
//!
//! ```text
//! cargo run --release --example optimize_suite -- \
//!     [--jobs N] [--scale N] [--cache DIR] [--arch NAME] [--suite NAME]
//! ```
//!
//! `--arch` selects the GPU architecture backend (`ampere`, `turing`,
//! `hopper`) and `--suite` the workload (`table2`, `attention`,
//! `reduction`). The suite is sharded across `--jobs` worker threads; for a
//! fixed seed the reports are identical for any job count (per-kernel
//! seeds, ordered aggregation). When `--cache` is given, a second run
//! answers every kernel from the schedule cache instead of searching again.

use cuasmrl::{cli, load_suite_report, GameConfig, Strategy, SuiteOptimizer};
use gpusim::{GpuConfig, MeasureOptions};

fn main() {
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let mut scale = 16;
    let mut cache: Option<String> = None;
    let mut gpu = GpuConfig::a100();
    let mut workload = kernels::find_suite("table2").expect("table2 is built in");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or(jobs),
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--cache" => cache = args.next(),
            "--arch" => match cli::resolve_arch(&args.next().unwrap_or_default()) {
                Ok(selected) => gpu = selected,
                Err(err) => {
                    eprintln!("error: {err}");
                    std::process::exit(2);
                }
            },
            "--suite" => match cli::resolve_suite(&args.next().unwrap_or_default()) {
                Ok(selected) => workload = selected,
                Err(err) => {
                    eprintln!("error: {err}");
                    std::process::exit(2);
                }
            },
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }

    let measure = MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed: 0,
    };
    let mut driver = SuiteOptimizer::new(
        gpu,
        Strategy::Evolutionary {
            generations: 12,
            mutation_length: 24,
            seed: 0,
        },
    )
    .with_jobs(jobs)
    .with_seed(0)
    .with_tune_options(measure.clone())
    .with_game_config(GameConfig {
        episode_length: 32,
        measure,
        ..GameConfig::default()
    });
    if let Some(dir) = &cache {
        driver = driver.with_cache_dir(dir);
    }

    println!(
        "optimizing the `{}` suite for `{}` at scale 1/{scale} with {jobs} jobs...",
        workload.name,
        driver.gpu().name
    );
    let start = std::time::Instant::now();
    let suite = driver.optimize_workload(&workload, scale);
    println!("finished in {:.2?}\n", start.elapsed());
    print!("{}", suite.table());

    if let Some(dir) = cache {
        let persisted = load_suite_report(dir.as_ref(), &suite.gpu, &suite.suite)
            .expect("suite report persisted");
        println!(
            "\nschedule cache ready at `{dir}` ({} kernels); deploy-time lookup will reuse it",
            persisted.reports.len()
        );
    }
}
